// Package flight is the engine's black-box flight recorder: an
// always-on, bounded background sampler that keeps the last few minutes
// of observability state in memory, and — on a trigger — writes a
// self-contained JSON postmortem bundle describing what the engine was
// doing when something went wrong.
//
// The motivation mirrors an aircraft's black box: the PR-2 audit
// pipeline and the PR-4 crash oracle tell us *that* serializability or
// durability was violated; the bundle captures *why* — which phase the
// latency lived in (the attribution matrix of internal/obs), which
// transactions were blocked on whom (the lock manager's waits-for
// graph), what the last alarms said, and the tail of the event trace.
//
// Triggers: an audit alarm (audit.Options.OnAlarm → TriggerAsync), a
// crashtest oracle violation (Capture), an explicit HTTP dump
// (/debug/mvdb/dump → Trigger), or an mvtorture failure. Bundles are
// written through internal/core's crash-atomic replace path, so a
// half-written postmortem can never shadow an intact one.
package flight

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/audit"
	"mvdb/internal/core"
	"mvdb/internal/faultfs"
	"mvdb/internal/health"
	"mvdb/internal/hotspot"
	"mvdb/internal/lock"
	"mvdb/internal/obs"
	"mvdb/internal/trace"
)

// SchemaVersion identifies the bundle format. Bump on any
// backwards-incompatible change to Bundle's shape. v2 added the health
// timeline section; v3 the hotspot report.
const SchemaVersion = "mvdb-flight/v3"

// Sources are the read-only taps the recorder samples. Stats is
// required; every other tap is optional (nil omits its section from
// bundles). All functions must be safe for concurrent use — they are
// called from the sampler goroutine and from any goroutine that
// triggers a bundle.
type Sources struct {
	// Stats returns the engine's observability snapshot.
	Stats func() obs.Snapshot
	// Trace returns the recent event-trace ring.
	Trace func() []obs.Event
	// Audit returns the audit pipeline's state (alarms, spans, graph).
	Audit func() audit.Snapshot
	// WaitGraph exports the lock manager's waits-for graph.
	WaitGraph func() lock.WaitGraph
	// Traces returns the promoted per-transaction causal traces. The
	// tap is called at assembly time, so it may first promote the
	// freshest sampled traces ("this bundle is the anomaly — keep the
	// evidence") before returning.
	Traces func() []trace.Trace
	// Health returns the health monitor's recent base-resolution points
	// (oldest first) — what the rates and percentiles were doing in the
	// minutes before the trigger.
	Health func() []health.Point
	// Hotspot returns the workload profiler's report — which keys and
	// stripes were hot when the trigger fired (nil report omits the
	// section).
	Hotspot func() *hotspot.Report
}

// Options configures a Recorder.
type Options struct {
	// Dir is where bundles are written (created if missing). Required.
	Dir string
	// FS is the filesystem bundles are written through (nil =
	// faultfs.OS; the crash harness passes its shim).
	FS faultfs.FS
	// Interval is the background sampling cadence (<= 0: 1s).
	Interval time.Duration
	// Depth is the stats ring size — how many samples of history a
	// bundle carries (<= 0: 64; at the default cadence ≈ one minute).
	Depth int
	// TraceTail bounds the trace events kept in a bundle (<= 0: 256).
	TraceTail int
	// MinGap rate-limits TriggerAsync: asynchronous triggers (audit
	// alarms can fire per-commit on a broken engine) produce at most
	// one bundle per MinGap (<= 0: 1s). Explicit Trigger calls are
	// never limited.
	MinGap time.Duration
}

// Sample is one background observation: a stats snapshot and when it
// was taken.
type Sample struct {
	At    int64        `json:"at_ns"`
	Stats obs.Snapshot `json:"stats"`
}

// Bundle is a self-contained postmortem document.
type Bundle struct {
	Schema    string `json:"schema"`
	Seq       uint64 `json:"seq"`
	WrittenAt int64  `json:"written_at_ns"`
	Reason    string `json:"reason"`
	Detail    string `json:"detail,omitempty"`

	// Stats is the snapshot at trigger time; Ring the sampled history
	// leading up to it (oldest first).
	Stats obs.Snapshot `json:"stats"`
	Ring  []Sample     `json:"stats_ring,omitempty"`

	Trace     []obs.Event     `json:"trace,omitempty"`
	Audit     *audit.Snapshot `json:"audit,omitempty"`
	WaitGraph *lock.WaitGraph `json:"wait_graph,omitempty"`
	Traces    []trace.Trace   `json:"traces,omitempty"`
	Health    []health.Point  `json:"health,omitempty"`
	Hotspot   *hotspot.Report `json:"hotspot,omitempty"`
}

// Recorder is the running black box. Create with New, stop with Close.
// All methods are safe for concurrent use.
type Recorder struct {
	src  Sources
	opts Options
	fsys faultfs.FS

	mu      sync.Mutex // guards ring state and serializes bundle writes
	ring    []Sample   // circular, ringN valid entries ending at ringPos-1
	ringPos int
	ringN   int

	seq         atomic.Uint64 // bundles written
	lastAsync   atomic.Int64  // unix ns of the last async-triggered bundle
	lastPath    atomic.Value  // string: most recent bundle path
	rateLimited atomic.Uint64 // async triggers suppressed by MinGap

	triggers chan trigReq
	quit     chan struct{}
	done     chan struct{}
	closed   atomic.Bool
}

type trigReq struct{ reason, detail string }

// New starts a recorder: the sampling goroutine begins immediately.
func New(src Sources, opts Options) (*Recorder, error) {
	if src.Stats == nil {
		return nil, errors.New("flight: Sources.Stats is required")
	}
	if opts.Dir == "" {
		return nil, errors.New("flight: Options.Dir is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Depth <= 0 {
		opts.Depth = 64
	}
	if opts.TraceTail <= 0 {
		opts.TraceTail = 256
	}
	if opts.MinGap <= 0 {
		opts.MinGap = time.Second
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	r := &Recorder{
		src:      src,
		opts:     opts,
		fsys:     opts.FS,
		ring:     make([]Sample, opts.Depth),
		triggers: make(chan trigReq, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.sample() // bundles carry at least one pre-trigger sample immediately
	go r.run()
	return r, nil
}

func (r *Recorder) run() {
	defer close(r.done)
	tick := time.NewTicker(r.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.sample()
		case tr := <-r.triggers:
			r.Trigger(tr.reason, tr.detail) // errors already logged by Trigger's caller contract
		case <-r.quit:
			return
		}
	}
}

func (r *Recorder) sample() {
	s := Sample{At: time.Now().UnixNano(), Stats: r.src.Stats()}
	r.mu.Lock()
	r.ring[r.ringPos] = s
	r.ringPos = (r.ringPos + 1) % len(r.ring)
	if r.ringN < len(r.ring) {
		r.ringN++
	}
	r.mu.Unlock()
}

// Trigger assembles and writes a bundle now, returning its path. It is
// synchronous and never rate-limited: an explicit dump always happens.
// Concurrent triggers serialize; each writes its own bundle.
func (r *Recorder) Trigger(reason, detail string) (string, error) {
	if r.closed.Load() {
		return "", errors.New("flight: recorder closed")
	}
	b := r.assemble(reason, detail)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flight: encode bundle: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(r.opts.Dir, fmt.Sprintf("flight-%06d-%s.json", b.Seq, sanitize(reason)))
	r.mu.Lock()
	err = core.AtomicReplace(r.fsys, path, data)
	r.mu.Unlock()
	if err != nil {
		return "", fmt.Errorf("flight: write bundle: %w", err)
	}
	r.lastPath.Store(path)
	return path, nil
}

// TriggerAsync requests a bundle without blocking the caller: the write
// happens on the sampler goroutine. At most one bundle per MinGap is
// produced this way — the path for hooks that can fire per-commit, like
// the audit pipeline's OnAlarm. Safe to call after Close (no-op).
func (r *Recorder) TriggerAsync(reason, detail string) {
	if r.closed.Load() {
		return
	}
	now := time.Now().UnixNano()
	last := r.lastAsync.Load()
	if now-last < r.opts.MinGap.Nanoseconds() || !r.lastAsync.CompareAndSwap(last, now) {
		r.rateLimited.Add(1)
		return
	}
	select {
	case r.triggers <- trigReq{reason, detail}:
	default: // a trigger is already queued; this one is redundant
	}
}

func (r *Recorder) assemble(reason, detail string) Bundle {
	b := Bundle{
		Schema:    SchemaVersion,
		Seq:       r.seq.Add(1),
		WrittenAt: time.Now().UnixNano(),
		Reason:    reason,
		Detail:    detail,
		Stats:     r.src.Stats(),
	}
	r.mu.Lock()
	b.Ring = make([]Sample, 0, r.ringN)
	start := r.ringPos - r.ringN
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.ringN; i++ {
		b.Ring = append(b.Ring, r.ring[(start+i)%len(r.ring)])
	}
	r.mu.Unlock()
	if r.src.Trace != nil {
		tr := r.src.Trace()
		if len(tr) > r.opts.TraceTail {
			tr = tr[len(tr)-r.opts.TraceTail:]
		}
		b.Trace = tr
	}
	if r.src.Audit != nil {
		a := r.src.Audit()
		b.Audit = &a
	}
	if r.src.WaitGraph != nil {
		g := r.src.WaitGraph()
		b.WaitGraph = &g
	}
	if r.src.Traces != nil {
		b.Traces = r.src.Traces()
	}
	if r.src.Health != nil {
		b.Health = r.src.Health()
	}
	if r.src.Hotspot != nil {
		b.Hotspot = r.src.Hotspot()
	}
	return b
}

// Bundles returns how many bundles have been written.
func (r *Recorder) Bundles() uint64 { return r.seq.Load() }

// RateLimited returns how many TriggerAsync calls the MinGap limiter has
// suppressed — the health timeline turns this into a per-interval rate
// (a sustained nonzero rate means alarms are firing faster than bundles
// can record them).
func (r *Recorder) RateLimited() uint64 { return r.rateLimited.Load() }

// LastBundle returns the most recently written bundle's path ("" if
// none yet).
func (r *Recorder) LastBundle() string {
	p, _ := r.lastPath.Load().(string)
	return p
}

// Close stops the sampler. Pending async triggers are dropped; explicit
// Trigger calls fail afterwards.
func (r *Recorder) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	close(r.quit)
	<-r.done
}

// HTTPHandler serves the explicit-dump trigger (/debug/mvdb/dump on the
// debug server): every request writes a bundle and answers with its
// path as JSON.
func (r *Recorder) HTTPHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		path, err := r.Trigger("dump", "explicit dump via "+req.RemoteAddr)
		w.Header().Set("Content-Type", "application/json")
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"bundle": path})
	})
}

// Capture writes a one-shot bundle from src without a running recorder
// — the crash-torture harness's path: when an oracle fires there is no
// long-lived recorder, just an engine to photograph before teardown.
func Capture(src Sources, fsys faultfs.FS, dir, reason, detail string) (string, error) {
	r, err := New(src, Options{Dir: dir, FS: fsys, Interval: time.Hour})
	if err != nil {
		return "", err
	}
	defer r.Close()
	return r.Trigger(reason, detail)
}

// Load reads a bundle back (mvinspect -bundle, tests).
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("flight: decode %s: %w", path, err)
	}
	if !strings.HasPrefix(b.Schema, "mvdb-flight/") {
		return nil, fmt.Errorf("flight: %s: not a flight bundle (schema %q)", path, b.Schema)
	}
	return &b, nil
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "bundle"
	}
	return sb.String()
}
