package flight

import (
	"fmt"
	"io"
	"sort"
	"time"

	"mvdb/internal/hotspot"
	"mvdb/internal/metrics"
	"mvdb/internal/trace"
)

// Render writes a human-readable postmortem report for a bundle:
// header, per-protocol phase-attribution table, headline counters, the
// last audit alarms, the waits-for graph, and the trace tail. It is the
// single renderer behind `mvinspect -bundle` so tests and the CLI agree
// on what a bundle "looks like".
func Render(b *Bundle, w io.Writer) {
	fmt.Fprintf(w, "flight bundle #%d (%s)\n", b.Seq, b.Schema)
	fmt.Fprintf(w, "  reason:  %s\n", b.Reason)
	if b.Detail != "" {
		fmt.Fprintf(w, "  detail:  %s\n", b.Detail)
	}
	fmt.Fprintf(w, "  written: %s\n", time.Unix(0, b.WrittenAt).Format(time.RFC3339Nano))
	fmt.Fprintf(w, "  history: %d samples\n", len(b.Ring))

	fmt.Fprintf(w, "\n== headline counters ==\n")
	sn := b.Stats
	fmt.Fprintf(w, "  protocol=%s commits rw=%d ro=%d retries=%d\n",
		sn.Protocol, sn.CommitsRW, sn.CommitsRO, sn.Retries)
	fmt.Fprintf(w, "  aborts conflict=%d deadlock=%d user=%d\n",
		sn.AbortsConflict, sn.AbortsDeadlock, sn.AbortsUser)
	fmt.Fprintf(w, "  locks waits=%d deadlocks=%d wounds=%d timeouts=%d\n",
		sn.LockWaits, sn.LockDeadlocks, sn.LockWounds, sn.LockTimeouts)
	fmt.Fprintf(w, "  wal appends=%d fsyncs=%d batches=%d\n",
		sn.WALAppends, sn.WALFsyncs, sn.WALBatches)
	fmt.Fprintf(w, "  vc tnc=%d vtnc=%d queue=%d\n", sn.TNC, sn.VTNC, sn.VCQueueLen)

	if len(sn.Phases) > 0 {
		fmt.Fprintf(w, "\n== phase attribution ==\n")
		fmt.Fprintf(w, "  %-8s %-12s %10s %12s %12s %12s %12s  %s\n",
			"proto", "phase", "count", "mean", "p99", "max", "total", "slowest-tx")
		for _, ps := range sn.Phases {
			d := ps.Durations
			slow := ""
			if ps.SlowestTx != 0 {
				slow = fmt.Sprintf("tx %d", ps.SlowestTx)
			}
			fmt.Fprintf(w, "  %-8s %-12s %10d %12s %12s %12s %12s  %s\n",
				ps.Protocol, ps.Phase, d.Count,
				metrics.Dur(int64(d.Mean)), metrics.Dur(d.P99), metrics.Dur(d.Max),
				metrics.Dur(d.TotalNanoseconds), slow)
		}
	}

	if b.Audit != nil {
		a := b.Audit
		fmt.Fprintf(w, "\n== audit ==\n")
		fmt.Fprintf(w, "  alarms=%d processed=%d pending=%d graph nodes=%d edges=%d\n",
			a.AlarmsTotal, a.Processed, a.Pending, a.GraphNodes, a.GraphEdges)
		for _, al := range a.Alarms {
			fmt.Fprintf(w, "  [%d] %s: %s (txs %v)\n", al.Seq, al.Kind, al.Message, al.Txs)
		}
	}

	if b.WaitGraph != nil && len(b.WaitGraph.Edges) > 0 {
		g := b.WaitGraph
		fmt.Fprintf(w, "\n== waits-for graph (%d waiters) ==\n", g.Waiters)
		for _, e := range g.Edges {
			fmt.Fprintf(w, "  tx %d --[%s %q]--> tx %d\n", e.From, e.Mode, e.Key, e.To)
		}
	}

	if h := b.Hotspot; h != nil {
		fmt.Fprintf(w, "\n== hotspot profile ==\n")
		fmt.Fprintf(w, "  touches=%d sampled=%d shed=%d (1 in %d)\n",
			h.Touches, h.Sampled, h.Shed, h.SampleEvery)
		top := func(label string, keys []hotspot.HotKey) {
			if len(keys) == 0 {
				return
			}
			fmt.Fprintf(w, "  top %s:\n", label)
			for _, k := range keys {
				fmt.Fprintf(w, "    %-24q count>=%d (err %d)\n", k.Key, k.Count-k.Err, k.Err)
			}
		}
		top("writes", h.HotWrites)
		top("reads", h.HotReads)
		for _, c := range h.Conflicts {
			fmt.Fprintf(w, "  conflict %-12s %-24q x%d\n", c.Cause, c.Key, c.Count)
		}
		for _, s := range h.Stripes {
			fmt.Fprintf(w, "  stripe %3d: waits=%d wait=%s wounds=%d hold=%s\n",
				s.Stripe, s.Waits, metrics.Dur(s.WaitNanos), s.Wounds, metrics.Dur(s.HoldNanos))
		}
	}

	if len(b.Traces) > 0 {
		fmt.Fprintf(w, "\n== causal traces (%d promoted) ==\n", len(b.Traces))
		for i := range b.Traces {
			trace.Waterfall(w, b.Traces[i])
		}
	}

	if len(b.Trace) > 0 {
		fmt.Fprintf(w, "\n== trace tail (%d events) ==\n", len(b.Trace))
		byType := map[string]int{}
		for _, ev := range b.Trace {
			byType[ev.Type.String()]++
		}
		types := make([]string, 0, len(byType))
		for t := range byType {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			fmt.Fprintf(w, "  %-12s %d\n", t, byType[t])
		}
		tail := b.Trace
		if len(tail) > 10 {
			tail = tail[len(tail)-10:]
		}
		fmt.Fprintf(w, "  last %d:\n", len(tail))
		for _, ev := range tail {
			fmt.Fprintf(w, "    %s tx=%d key=%q tn=%d dur=%s\n",
				ev.Type, ev.Tx, ev.Key, ev.TN, metrics.Dur(ev.Dur))
		}
	}
}
