package history

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mvdb/internal/engine"
)

// h is a tiny DSL for building histories in tests.
type h struct {
	t *testing.T
	r *Recorder
}

func newH(t *testing.T) *h { return &h{t, NewRecorder()} }

func (x *h) begin(id uint64, class engine.Class) *h {
	x.r.RecordBegin(id, class)
	return x
}
func (x *h) read(id uint64, key string, v uint64) *h {
	x.r.RecordRead(id, key, v)
	return x
}
func (x *h) write(id uint64, key string, v uint64) *h {
	x.r.RecordWrite(id, key, v)
	return x
}
func (x *h) commit(id, tn uint64) *h {
	x.r.RecordCommit(id, tn)
	return x
}
func (x *h) abort(id uint64) *h {
	x.r.RecordAbort(id)
	return x
}

func TestEmptyHistoryOK(t *testing.T) {
	if err := NewRecorder().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSerialHistoryOK(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).read(1, "a", 0).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).read(2, "a", 1).write(2, "a", 2).commit(2, 2)
	x.begin(3, engine.ReadOnly).read(3, "a", 2).commit(3, 2)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedTxIgnored(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "a", 1).abort(1)
	x.begin(2, engine.ReadWrite).read(2, "a", 0).write(2, "a", 2).commit(2, 2)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyReadDetected(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "a", 1).abort(1)
	x.begin(2, engine.ReadOnly).read(2, "a", 1).commit(2, 0)
	err := x.r.Check()
	if err == nil || !strings.Contains(err.Error(), "dirty read") {
		t.Fatalf("err = %v, want dirty read", err)
	}
}

func TestDuplicateRWTransactionNumber(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).write(2, "b", 1).commit(2, 1)
	err := x.r.Check()
	if err == nil || !strings.Contains(err.Error(), "share tn") {
		t.Fatalf("err = %v, want duplicate tn", err)
	}
}

func TestReadOnlyTxsMayShareTN(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadOnly).read(2, "a", 1).commit(2, 1)
	x.begin(3, engine.ReadOnly).read(3, "a", 1).commit(3, 1)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
}

// The classic non-serializable MV anomaly: two transactions each read the
// version the other overwrites (write skew on the same keys).
//
//	T1: r[x0] w[x1]   T2: r[x0] w[x2]? — that IS serializable (both read x0).
//
// Use instead: T1 reads x0 and writes y; T2 reads y0 and writes x; each
// reads the initial version, so each must precede the other.
func TestWriteSkewCycleDetected(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).read(1, "x", 0).write(1, "y", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).read(2, "y", 0).write(2, "x", 2).commit(2, 2)
	err := x.r.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle", err)
	}
	// Cross-validate with brute force.
	ok, bfErr := x.r.BruteForceCheck()
	if bfErr != nil {
		t.Fatal(bfErr)
	}
	if ok {
		t.Fatal("brute force says serializable, MVSG disagrees")
	}
}

// A stale read-only transaction that straddles two writers inconsistently:
// it sees T2's write to x but T1's (older) version of y although T1 also
// wrote y... construct: RO reads x from T1 but y from T2 where T1 wrote
// both and T2 wrote both. Seeing a "mixed" snapshot is not 1SR.
func TestInconsistentSnapshotDetected(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "x", 1).write(1, "y", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).write(2, "x", 2).write(2, "y", 2).commit(2, 2)
	x.begin(3, engine.ReadOnly).read(3, "x", 2).read(3, "y", 1).commit(3, 2)
	err := x.r.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle", err)
	}
}

func TestConsistentSnapshotOK(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "x", 1).write(1, "y", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).write(2, "x", 2).write(2, "y", 2).commit(2, 2)
	x.begin(3, engine.ReadOnly).read(3, "x", 1).read(3, "y", 1).commit(3, 1)
	x.begin(4, engine.ReadOnly).read(4, "x", 2).read(4, "y", 2).commit(4, 2)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOwnWriteImposesNoConstraint(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).write(1, "a", 1).read(1, "a", 1).commit(1, 1)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLostUpdateDetected(t *testing.T) {
	// T1 and T2 both read a0 and both write a — under the natural version
	// order a1 << a2, T2 read a0 but a1 intervenes: T2 -> T1 (rk->ri rule
	// ... actually r2[a0], w1[a1]: version order a0 << a1, a0 << a2;
	// for r2[a0] and writer T1: v(a1) > v(a0) => edge T2 -> T1.
	// For r1[a0] and writer T2: edge T1 -> T2. Cycle.
	x := newH(t)
	x.begin(1, engine.ReadWrite).read(1, "a", 0).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).read(2, "a", 0).write(2, "a", 2).commit(2, 2)
	err := x.r.Check()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle (lost update)", err)
	}
}

func TestBruteForceAgreesOnSerializable(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).read(1, "a", 0).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadWrite).read(2, "a", 1).write(2, "b", 2).commit(2, 2)
	if err := x.r.Check(); err != nil {
		t.Fatal(err)
	}
	ok, err := x.r.BruteForceCheck()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("brute force rejected a serializable history")
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	x := newH(t)
	for id := uint64(1); id <= 10; id++ {
		x.begin(id, engine.ReadWrite).write(id, "a", id).commit(id, id)
	}
	if _, err := x.r.BruteForceCheck(); err == nil {
		t.Fatal("expected size error")
	}
}

// Property: on random small histories, MVSG-acyclic implies brute-force
// serializable (soundness of the certificate).
func TestPropertyMVSGSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder()
		keys := []string{"x", "y", "z"}
		n := 2 + rng.Intn(5)
		// committed version chains per key, ascending; start with bootstrap 0
		chains := map[string][]uint64{}
		for _, k := range keys {
			chains[k] = []uint64{0}
		}
		for id := uint64(1); id <= uint64(n); id++ {
			r.RecordBegin(id, engine.ReadWrite)
			// random reads: pick an existing version of random keys
			for _, k := range keys {
				if rng.Intn(2) == 0 {
					vs := chains[k]
					r.RecordRead(id, k, vs[rng.Intn(len(vs))])
				}
			}
			// random writes
			for _, k := range keys {
				if rng.Intn(3) == 0 {
					r.RecordWrite(id, k, id)
					chains[k] = append(chains[k], id)
				}
			}
			r.RecordCommit(id, id)
		}
		mvsgOK := r.Check() == nil
		bfOK, err := r.BruteForceCheck()
		if err != nil {
			return false
		}
		if mvsgOK && !bfOK {
			t.Logf("seed %d: MVSG acyclic but not serializable", seed)
			return false
		}
		// And brute-force failure must imply MVSG cycle.
		if !bfOK && mvsgOK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	x := newH(t)
	x.begin(1, engine.ReadWrite).read(1, "a", 0).write(1, "a", 1).commit(1, 1)
	x.begin(2, engine.ReadOnly).read(2, "a", 1).commit(2, 1)
	var sb strings.Builder
	if err := x.r.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph MVSG", "T0\\n(bootstrap)", "tn=1", "shape=box", "->"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// A cyclic history renders too (the point of the tool).
	y := newH(t)
	y.begin(1, engine.ReadWrite).read(1, "x", 0).write(1, "y", 1).commit(1, 1)
	y.begin(2, engine.ReadWrite).read(2, "y", 0).write(2, "x", 2).commit(2, 2)
	sb.Reset()
	if err := y.r.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "style=dashed") {
		t.Fatal("no version-order edges rendered")
	}
}
