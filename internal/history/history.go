// Package history implements an engine-independent one-copy
// serializability checker.
//
// A Recorder is attached to an engine under test and collects, for every
// transaction, the identity of each version read and written (a version is
// identified by the transaction number of its creator, exactly as in the
// paper's model, Section 3.2). Check then builds the multiversion
// serialization graph MVSG(H) of Bernstein & Goodman, using the natural
// version order (order of version numbers), and verifies it is acyclic:
//
//   - one node per committed transaction (plus a virtual bootstrap
//     transaction T0 that created all version-0 data);
//   - a reads-from edge Tj -> Tk for every r_k[x_j];
//   - for every r_k[x_j] and writer T_i of x (i, j, k distinct): if
//     x_i << x_j then T_i -> T_j, otherwise T_k -> T_i.
//
// Acyclicity of MVSG under *some* version order implies the history is
// one-copy serializable (paper Section 3.2); exhibiting the natural order
// as a witness is therefore a sound certificate. The checker never looks
// at engine internals, so the same code validates the paper's engines,
// the baselines, and catches the deliberately broken ablation variants.
package history

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mvdb/internal/engine"
)

type readEvent struct {
	key       string
	versionTN uint64
}

type txRecord struct {
	id        uint64
	class     engine.Class
	reads     []readEvent
	writes    map[string]uint64 // key -> version TN created
	tn        uint64
	committed bool
	aborted   bool
}

// Recorder collects operation history. It implements engine.Recorder and
// is safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	txs map[uint64]*txRecord
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{txs: make(map[uint64]*txRecord)}
}

// RecordBegin implements engine.Recorder.
func (r *Recorder) RecordBegin(txID uint64, class engine.Class) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.txs[txID]; ok {
		panic(fmt.Sprintf("history: duplicate begin for tx %d", txID))
	}
	r.txs[txID] = &txRecord{id: txID, class: class, writes: make(map[string]uint64)}
}

// RecordRead implements engine.Recorder.
func (r *Recorder) RecordRead(txID uint64, key string, versionTN uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.txs[txID]
	if t == nil {
		panic(fmt.Sprintf("history: read by unknown tx %d", txID))
	}
	t.reads = append(t.reads, readEvent{key, versionTN})
}

// RecordWrite implements engine.Recorder.
func (r *Recorder) RecordWrite(txID uint64, key string, versionTN uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.txs[txID]
	if t == nil {
		panic(fmt.Sprintf("history: write by unknown tx %d", txID))
	}
	t.writes[key] = versionTN
}

// RecordCommit implements engine.Recorder.
func (r *Recorder) RecordCommit(txID uint64, tn uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.txs[txID]
	if t == nil {
		panic(fmt.Sprintf("history: commit of unknown tx %d", txID))
	}
	t.tn = tn
	t.committed = true
}

// RecordAbort implements engine.Recorder.
func (r *Recorder) RecordAbort(txID uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.txs[txID]; t != nil {
		t.aborted = true
	}
}

// CommittedCount returns the number of committed transactions recorded.
func (r *Recorder) CommittedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.txs {
		if t.committed {
			n++
		}
	}
	return n
}

// Check verifies one-copy serializability of the recorded history.
// It returns nil if MVSG(H) is acyclic, and a descriptive error naming a
// cycle (or a more basic integrity violation, such as a dirty read or a
// duplicate read-write transaction number) otherwise.
func (r *Recorder) Check() error {
	r.mu.Lock()
	committed := make([]*txRecord, 0, len(r.txs))
	for _, t := range r.txs {
		if t.committed {
			if t.aborted {
				r.mu.Unlock()
				return fmt.Errorf("history: tx %d both committed and aborted", t.id)
			}
			committed = append(committed, t)
		}
	}
	r.mu.Unlock()

	sort.Slice(committed, func(i, j int) bool {
		if committed[i].tn != committed[j].tn {
			return committed[i].tn < committed[j].tn
		}
		return committed[i].id < committed[j].id
	})

	// Build the MVSG through the shared incremental construction
	// (graph.go) in Strict mode: all writers are indexed before any read
	// is resolved, so a read of an unknown version is a dirty read.
	g := NewGraph(Strict)
	for _, t := range committed {
		if err := g.AddWrites(t.history()); err != nil {
			return err
		}
	}
	for _, t := range committed {
		if _, err := g.AddReads(t.id); err != nil {
			return err
		}
	}

	if cyc := g.FindCycle(); cyc != nil {
		var sb strings.Builder
		for i, id := range cyc {
			if i > 0 {
				sb.WriteString(" -> ")
			}
			fmt.Fprintf(&sb, "T%d(tn=%d)", id, g.TN(id))
		}
		return fmt.Errorf("history: MVSG cycle: %s", sb.String())
	}
	return nil
}

// history converts the recorder's internal record into the shared
// TxHistory form used by the MVSG graph. Write order is made
// deterministic so graph construction is reproducible.
func (t *txRecord) history() TxHistory {
	h := TxHistory{ID: t.id, TN: t.tn, Reads: make([]Op, 0, len(t.reads))}
	for _, rd := range t.reads {
		h.Reads = append(h.Reads, Op{Key: rd.key, VersionTN: rd.versionTN})
	}
	if len(t.writes) > 0 {
		keys := make([]string, 0, len(t.writes))
		for k := range t.writes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		h.Writes = make([]Op, 0, len(keys))
		for _, k := range keys {
			h.Writes = append(h.Writes, Op{Key: k, VersionTN: t.writes[k]})
		}
	}
	return h
}

// BruteForceCheck decides one-copy serializability of the recorded history
// exactly, by trying every permutation of the committed transactions and
// replaying it against a single-version store. It is exponential and meant
// to cross-validate Check on small randomized histories (property tests).
// Histories with more than 9 committed transactions are rejected.
func (r *Recorder) BruteForceCheck() (serializable bool, err error) {
	r.mu.Lock()
	var committed []*txRecord
	for _, t := range r.txs {
		if t.committed {
			committed = append(committed, t)
		}
	}
	r.mu.Unlock()
	if len(committed) > 9 {
		return false, fmt.Errorf("history: brute force limited to 9 txs, got %d", len(committed))
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].id < committed[j].id })

	n := len(committed)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	ok := false
	var rec func(k int)
	rec = func(k int) {
		if ok {
			return
		}
		if k == n {
			if replaySerial(committed, perm) {
				ok = true
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return ok, nil
}

// replaySerial simulates the permutation on a single-version store where
// each key holds the version TN of its last writer, and checks that every
// read observed exactly the current version.
func replaySerial(txs []*txRecord, perm []int) bool {
	state := map[string]uint64{} // key -> current version TN (0 = bootstrap)
	for _, i := range perm {
		t := txs[i]
		for _, rd := range t.reads {
			if own, okW := t.writes[rd.key]; okW && own == rd.versionTN {
				continue // read-own-write
			}
			if state[rd.key] != rd.versionTN {
				return false
			}
		}
		for key, vtn := range t.writes {
			state[key] = vtn
		}
	}
	return true
}

// WriteDOT renders the MVSG of the committed history in Graphviz DOT
// format — reads-from edges solid, version-order edges dashed — so a
// rejected history can be inspected visually (`mvverify -dot` writes one
// on failure). The rendering reuses the exact edge construction of Check.
func (r *Recorder) WriteDOT(w io.Writer) error {
	r.mu.Lock()
	committed := make([]*txRecord, 0, len(r.txs))
	for _, t := range r.txs {
		if t.committed {
			committed = append(committed, t)
		}
	}
	r.mu.Unlock()
	sort.Slice(committed, func(i, j int) bool { return committed[i].id < committed[j].id })

	nodes := make([]*txRecord, 1, len(committed)+1)
	nodes[0] = &txRecord{id: 0, tn: 0, writes: map[string]uint64{}}
	nodes = append(nodes, committed...)

	// writer lookup (same shape as Check, tolerant of dirty histories:
	// unknown writers are rendered as a dedicated node).
	writerOf := map[string]map[uint64]int{}
	for i, t := range nodes {
		if i == 0 {
			continue
		}
		for key, vtn := range t.writes {
			if writerOf[key] == nil {
				writerOf[key] = map[uint64]int{}
			}
			writerOf[key][vtn] = i
		}
	}

	var b strings.Builder
	b.WriteString("digraph MVSG {\n  rankdir=LR;\n")
	for i, t := range nodes {
		label := fmt.Sprintf("T%d\\ntn=%d", t.id, t.tn)
		if i == 0 {
			label = "T0\\n(bootstrap)"
		}
		shape := "ellipse"
		if len(t.writes) == 0 && i != 0 {
			shape = "box" // read-only
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=%s];\n", i, label, shape)
	}
	type edge struct {
		from, to int
		dashed   bool
	}
	seen := map[edge]bool{}
	emit := func(from, to int, dashed bool, label string) {
		if from == to {
			return
		}
		e := edge{from, to, dashed}
		if seen[e] {
			return
		}
		seen[e] = true
		style := "solid"
		if dashed {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [style=%s, label=\"%s\"];\n", from, to, style, label)
	}
	for k, t := range nodes {
		if k == 0 {
			continue
		}
		for _, rd := range t.reads {
			if own, ok := t.writes[rd.key]; ok && own == rd.versionTN {
				continue
			}
			j := 0
			if rd.versionTN != 0 {
				var ok bool
				j, ok = writerOf[rd.key][rd.versionTN]
				if !ok {
					continue // dirty read; Check reports it, skip here
				}
			}
			emit(j, k, false, rd.key)
			for vtn, i := range writerOf[rd.key] {
				if i == j || i == k {
					continue
				}
				if vtn < rd.versionTN {
					emit(i, j, true, rd.key)
				} else {
					emit(k, i, true, rd.key)
				}
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
