package history

import (
	"fmt"
	"sort"
)

// This file factors the MVSG edge rules of Check into an incrementally
// usable form, so the same construction serves two consumers:
//
//   - the offline checker (Recorder.Check): every committed transaction,
//     writers indexed before any read is resolved, strict integrity —
//     a read of a version with no committed writer is a dirty read;
//   - the online auditor (internal/audit): a bounded window of recently
//     committed transactions, arriving in commit order rather than
//     serialization order, where a read of an unknown version is normal
//     (its writer was evicted from the window or predates it).
//
// Every edge the windowed graph contains is a genuine edge of the full
// MVSG — reads-from edges come from recorded reads, version-order edges
// compare the natural version order (version numbers) — so any cycle it
// finds is a real serializability violation. The converse does not hold:
// a bounded window can only certify the transactions it retains (see
// DESIGN.md on audit window semantics).

// Op is one recorded operation: for a read, the version observed; for a
// write, the version created.
type Op struct {
	Key       string `json:"key"`
	VersionTN uint64 `json:"tn"`
}

// TxHistory is the complete operation record of one committed
// transaction, the unit of Graph growth.
type TxHistory struct {
	ID     uint64
	TN     uint64
	Reads  []Op
	Writes []Op
}

// Edge is a directed MVSG edge between transaction IDs (0 = bootstrap).
type Edge struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Mode selects how Graph treats reads whose writer it has never seen.
type Mode int

const (
	// Strict mode is the offline checker's: every read must resolve to
	// a committed writer (or the bootstrap state); anything else is a
	// dirty read. Install all writers (AddWrites) before resolving any
	// reads (AddReads).
	Strict Mode = iota
	// Windowed mode is the online auditor's: unresolved reads are kept
	// and resolved late if the writer's commit arrives afterwards (an
	// out-of-order arrival), and silently attributed to the pre-window
	// past otherwise. Transactions are added whole, with Add.
	Windowed
)

type gNode struct {
	id     uint64
	tn     uint64
	reads  []Op
	writes []Op
}

// keyState indexes one key's recorded writers and readers inside the
// graph. Writer versions are unique (checked); readers may read the same
// version many times.
type keyState struct {
	writers map[uint64]uint64 // version TN -> writer id
	reads   []readRef
}

type readRef struct {
	reader    uint64
	versionTN uint64
}

// Graph is an incrementally maintained multiversion serialization graph
// over committed transactions. It is not safe for concurrent use.
type Graph struct {
	mode  Mode
	nodes map[uint64]*gNode
	order []uint64 // insertion order, for EvictOldest
	keys  map[string]*keyState
	rwTN  map[uint64]uint64 // read-write tn -> writer id
	adj   map[uint64]map[uint64]struct{}
	radj  map[uint64]map[uint64]struct{}
	edges int

	// newEdges accumulates the distinct edges added since the last
	// AddReads call, so Add can report exactly what one transaction
	// (plus any late resolutions it triggered) contributed.
	newEdges []Edge

	writerCount int
	evicted     uint64
}

// NewGraph returns an empty graph containing only the virtual bootstrap
// transaction T0 (id 0, tn 0), creator of every version-0 datum.
func NewGraph(mode Mode) *Graph {
	g := &Graph{
		mode:  mode,
		nodes: make(map[uint64]*gNode),
		keys:  make(map[string]*keyState),
		rwTN:  make(map[uint64]uint64),
		adj:   make(map[uint64]map[uint64]struct{}),
		radj:  make(map[uint64]map[uint64]struct{}),
	}
	g.nodes[0] = &gNode{id: 0, tn: 0}
	return g
}

// Len returns the number of committed transactions retained (bootstrap
// excluded).
func (g *Graph) Len() int { return len(g.order) }

// Writers returns how many retained transactions wrote at least one
// version.
func (g *Graph) Writers() int { return g.writerCount }

// Edges returns the number of distinct directed edges.
func (g *Graph) Edges() int { return g.edges }

// Evicted returns how many transactions have been evicted so far.
func (g *Graph) Evicted() uint64 { return g.evicted }

// TN returns the transaction number of a retained node (0 for unknown
// ids and for the bootstrap node).
func (g *Graph) TN(id uint64) uint64 {
	if n := g.nodes[id]; n != nil {
		return n.tn
	}
	return 0
}

// Add installs one committed transaction — writes first, then reads —
// and returns the distinct new edges its operations induced. An error
// reports an integrity violation (duplicate read-write transaction
// number, version-0 or duplicate version write, and in Strict mode a
// dirty read); the transaction is not installed when one is returned.
func (g *Graph) Add(t TxHistory) ([]Edge, error) {
	if err := g.AddWrites(t); err != nil {
		return nil, err
	}
	return g.AddReads(t.ID)
}

// AddWrites validates the transaction and installs its node and writes
// into the graph's indexes, resolving any retained reads that were
// waiting for one of its versions (Windowed mode's out-of-order
// arrivals). Reads are stored but not resolved; call AddReads.
func (g *Graph) AddWrites(t TxHistory) error {
	if t.ID == 0 {
		return fmt.Errorf("history: tx id 0 is reserved for the bootstrap transaction")
	}
	if _, dup := g.nodes[t.ID]; dup {
		return fmt.Errorf("history: tx %d committed twice", t.ID)
	}
	if len(t.Writes) > 0 {
		if other, dup := g.rwTN[t.TN]; dup {
			return fmt.Errorf("history: read-write txs %d and %d share tn %d", other, t.ID, t.TN)
		}
		for _, w := range t.Writes {
			if w.VersionTN == 0 {
				return fmt.Errorf("history: tx %d wrote version 0 of %q (reserved for bootstrap)", t.ID, w.Key)
			}
			if ks := g.keys[w.Key]; ks != nil {
				if _, dup := ks.writers[w.VersionTN]; dup {
					return fmt.Errorf("history: two committed writers created the same version %d", w.VersionTN)
				}
			}
		}
	}

	n := &gNode{id: t.ID, tn: t.TN, reads: t.Reads, writes: t.Writes}
	g.nodes[t.ID] = n
	g.order = append(g.order, t.ID)
	if len(t.Writes) > 0 {
		g.rwTN[t.TN] = t.ID
		g.writerCount++
	}
	for _, w := range t.Writes {
		ks := g.key(w.Key)
		ks.writers[w.VersionTN] = t.ID
		// Late resolution: retained reads of this key gain the edges the
		// new writer implies — including the reads-from edge when the
		// read was of one of this transaction's own versions.
		for _, rd := range ks.reads {
			g.edgesForWriter(w.Key, t.ID, w.VersionTN, rd)
		}
	}
	return nil
}

// AddReads resolves the stored reads of an installed transaction against
// every writer currently indexed, generating reads-from and version-order
// edges, and returns the distinct edges added since the matching
// AddWrites call (late-resolution edges included). In Strict mode a read
// of a version with no indexed writer is a dirty read.
func (g *Graph) AddReads(id uint64) ([]Edge, error) {
	n := g.nodes[id]
	if n == nil {
		return nil, fmt.Errorf("history: AddReads of unknown tx %d", id)
	}
	// newEdges already holds whatever the matching AddWrites call
	// contributed via late resolution; keep accumulating into it.
	for _, rd := range n.reads {
		if ownVersion(n, rd) {
			continue
		}
		k := n.id
		ks := g.key(rd.Key)
		j, jKnown := g.writerOf(rd.Key, rd.VersionTN)
		if !jKnown && g.mode == Strict {
			return nil, fmt.Errorf("history: tx %d read version %d of %q whose writer never committed (dirty read)",
				n.id, rd.VersionTN, rd.Key)
		}
		if jKnown {
			g.addEdge(j, k) // reads-from
		}
		for vtn, i := range ks.writers {
			if (jKnown && i == j) || i == k {
				continue
			}
			if vtn < rd.VersionTN {
				if jKnown {
					g.addEdge(i, j)
				}
			} else {
				g.addEdge(k, i)
			}
		}
		ks.reads = append(ks.reads, readRef{reader: k, versionTN: rd.VersionTN})
	}
	out := make([]Edge, len(g.newEdges))
	copy(out, g.newEdges)
	g.newEdges = g.newEdges[:0]
	return out, nil
}

// edgesForWriter applies the MVSG rules to one retained read when a new
// writer of the same key arrives: either the read was of the new
// writer's version (resolving its reads-from edge and its version-order
// relation to every other writer), or the new writer is just another
// version the read must be ordered against.
func (g *Graph) edgesForWriter(key string, writer, versionTN uint64, rd readRef) {
	k := rd.reader
	if k == writer {
		return
	}
	if versionTN == rd.versionTN {
		// The read's writer arrived: reads-from, plus the version-order
		// edges that were skipped while it was unknown.
		j := writer
		g.addEdge(j, k)
		for vtn, i := range g.key(key).writers {
			if i == j || i == k {
				continue
			}
			if vtn < rd.versionTN {
				g.addEdge(i, j)
			} else {
				g.addEdge(k, i)
			}
		}
		return
	}
	if versionTN < rd.versionTN {
		if j, ok := g.writerOf(key, rd.versionTN); ok && j != writer && j != k {
			g.addEdge(writer, j)
		}
	} else {
		g.addEdge(k, writer)
	}
}

// EvictOldest removes the oldest retained transaction, its index entries
// and its incident edges, returning its id (0 when the graph is empty).
// Derived edges between surviving nodes are kept: they are genuine MVSG
// edges regardless of whether the operation that justified them is still
// retained.
func (g *Graph) EvictOldest() uint64 {
	if len(g.order) == 0 {
		return 0
	}
	id := g.order[0]
	g.order = g.order[1:]
	n := g.nodes[id]
	delete(g.nodes, id)
	g.evicted++

	if len(n.writes) > 0 {
		if g.rwTN[n.tn] == id {
			delete(g.rwTN, n.tn)
		}
		g.writerCount--
	}
	for _, w := range n.writes {
		if ks := g.keys[w.Key]; ks != nil {
			delete(ks.writers, w.VersionTN)
			g.pruneKey(w.Key, ks)
		}
	}
	for _, rd := range n.reads {
		if ks := g.keys[rd.Key]; ks != nil {
			kept := ks.reads[:0]
			for _, ref := range ks.reads {
				if ref.reader != id {
					kept = append(kept, ref)
				}
			}
			ks.reads = kept
			g.pruneKey(rd.Key, ks)
		}
	}
	for to := range g.adj[id] {
		delete(g.radj[to], id)
		g.edges--
	}
	delete(g.adj, id)
	for from := range g.radj[id] {
		delete(g.adj[from], id)
		g.edges--
	}
	delete(g.radj, id)
	return id
}

func (g *Graph) pruneKey(key string, ks *keyState) {
	if len(ks.writers) == 0 && len(ks.reads) == 0 {
		delete(g.keys, key)
	}
}

func (g *Graph) key(key string) *keyState {
	ks := g.keys[key]
	if ks == nil {
		ks = &keyState{writers: make(map[uint64]uint64)}
		g.keys[key] = ks
	}
	return ks
}

// writerOf resolves a version to its writer: version 0 is the bootstrap
// transaction, anything else must be indexed.
func (g *Graph) writerOf(key string, versionTN uint64) (uint64, bool) {
	if versionTN == 0 {
		return 0, true
	}
	ks := g.keys[key]
	if ks == nil {
		return 0, false
	}
	id, ok := ks.writers[versionTN]
	return id, ok
}

func ownVersion(n *gNode, rd Op) bool {
	for _, w := range n.writes {
		if w.Key == rd.Key && w.VersionTN == rd.VersionTN {
			return true
		}
	}
	return false
}

func (g *Graph) addEdge(from, to uint64) {
	if from == to {
		return
	}
	m := g.adj[from]
	if m == nil {
		m = make(map[uint64]struct{})
		g.adj[from] = m
	}
	if _, ok := m[to]; ok {
		return
	}
	m[to] = struct{}{}
	r := g.radj[to]
	if r == nil {
		r = make(map[uint64]struct{})
		g.radj[to] = r
	}
	r[from] = struct{}{}
	g.edges++
	g.newEdges = append(g.newEdges, Edge{From: from, To: to})
}

// Path returns a directed path from one node to another as a node list
// (from first, to last), or nil if none exists. Passing from == to asks
// for a cycle through that node. The online auditor calls this for each
// edge a commit adds: a path from the edge's head back to its tail
// closes a cycle.
func (g *Graph) Path(from, to uint64) []uint64 {
	type frame struct {
		node uint64
		next []uint64
	}
	succ := func(id uint64) []uint64 {
		out := make([]uint64, 0, len(g.adj[id]))
		for to := range g.adj[id] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	visited := map[uint64]bool{from: true}
	stack := []frame{{from, succ(from)}}
	parent := map[uint64]uint64{}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if len(f.next) == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		n := f.next[0]
		f.next = f.next[1:]
		if n == to {
			path := []uint64{to}
			for v := f.node; ; v = parent[v] {
				path = append(path, v)
				if v == from {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		parent[n] = f.node
		stack = append(stack, frame{n, succ(n)})
	}
	return nil
}

// FindCycle searches the whole graph and returns one cycle as a node-id
// list (first node not repeated at the end), or nil if the graph is
// acyclic. Nodes are visited in insertion order (bootstrap first) so the
// result is deterministic for a deterministic history.
func (g *Graph) FindCycle() []uint64 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int, len(g.nodes))
	parent := make(map[uint64]uint64)
	seeds := make([]uint64, 0, len(g.order)+1)
	seeds = append(seeds, 0)
	seeds = append(seeds, g.order...)

	type frame struct {
		node uint64
		next []uint64
	}
	succ := func(id uint64) []uint64 {
		out := make([]uint64, 0, len(g.adj[id]))
		for to := range g.adj[id] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for _, s := range seeds {
		if color[s] != white {
			continue
		}
		color[s] = gray
		stack := []frame{{s, succ(s)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if len(f.next) > 0 {
				n := f.next[0]
				f.next = f.next[1:]
				switch color[n] {
				case white:
					color[n] = gray
					parent[n] = f.node
					stack = append(stack, frame{n, succ(n)})
				case gray:
					cyc := []uint64{n}
					for v := f.node; v != n; v = parent[v] {
						cyc = append(cyc, v)
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}
