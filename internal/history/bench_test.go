package history

import (
	"math/rand"
	"testing"

	"mvdb/internal/engine"
)

// BenchmarkCheck measures MVSG construction + cycle detection on a
// serializable history of 2000 transactions over 64 keys.
func BenchmarkCheck(b *testing.B) {
	rec := NewRecorder()
	rng := rand.New(rand.NewSource(1))
	latest := make([]uint64, 64)
	for id := uint64(1); id <= 2000; id++ {
		rec.RecordBegin(id, engine.ReadWrite)
		for j := 0; j < 2; j++ {
			k := rng.Intn(64)
			rec.RecordRead(id, key(k), latest[k])
		}
		k := rng.Intn(64)
		rec.RecordWrite(id, key(k), id)
		latest[k] = id
		rec.RecordCommit(id, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func key(i int) string {
	return string([]byte{'k', byte('0' + i/10), byte('0' + i%10)})
}
