package history

import (
	"fmt"
	"testing"
)

func edgeSet(g *Graph) map[Edge]bool {
	set := make(map[Edge]bool)
	for from, tos := range g.adj {
		for to := range tos {
			set[Edge{From: from, To: to}] = true
		}
	}
	return set
}

// The windowed graph must converge to the same edge set no matter the
// order transactions commit in — late resolution is what makes the
// online auditor agree with the offline batch checker.
func TestGraphWindowedOutOfOrder(t *testing.T) {
	// T1 writes x@1; T2 reads x@1 and writes y@2. Arrival order: T2's
	// commit is processed before T1's (reader before its writer).
	t1 := TxHistory{ID: 1, TN: 1, Writes: []Op{{Key: "x", VersionTN: 1}}}
	t2 := TxHistory{ID: 2, TN: 2, Reads: []Op{{Key: "x", VersionTN: 1}}, Writes: []Op{{Key: "y", VersionTN: 2}}}

	inOrder := NewGraph(Windowed)
	for _, tx := range []TxHistory{t1, t2} {
		if _, err := inOrder.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	outOfOrder := NewGraph(Windowed)
	if _, err := outOfOrder.Add(t2); err != nil {
		t.Fatal(err)
	}
	edges, err := outOfOrder.Add(t1)
	if err != nil {
		t.Fatal(err)
	}
	// The reads-from edge T1->T2 must appear as a late resolution when
	// T1 (the writer) arrives.
	found := false
	for _, e := range edges {
		if e == (Edge{From: 1, To: 2}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("late resolution did not report T1->T2; got %v", edges)
	}
	want, got := edgeSet(inOrder), edgeSet(outOfOrder)
	if len(want) != len(got) {
		t.Fatalf("edge sets differ: in-order %v, out-of-order %v", want, got)
	}
	for e := range want {
		if !got[e] {
			t.Fatalf("out-of-order graph missing edge %v", e)
		}
	}
}

// A read whose writer never arrives is a dirty read offline but normal
// online (the writer predates the window).
func TestGraphUnknownWriterByMode(t *testing.T) {
	rd := TxHistory{ID: 5, TN: 5, Reads: []Op{{Key: "x", VersionTN: 3}}}

	strict := NewGraph(Strict)
	if err := strict.AddWrites(rd); err != nil {
		t.Fatal(err)
	}
	if _, err := strict.AddReads(rd.ID); err == nil {
		t.Fatal("strict mode accepted a read with no committed writer")
	}

	windowed := NewGraph(Windowed)
	if _, err := windowed.Add(rd); err != nil {
		t.Fatalf("windowed mode rejected a pre-window read: %v", err)
	}
}

func TestGraphIntegrityChecks(t *testing.T) {
	g := NewGraph(Windowed)
	if _, err := g.Add(TxHistory{ID: 1, TN: 1, Writes: []Op{{Key: "x", VersionTN: 1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(TxHistory{ID: 1, TN: 9}); err == nil {
		t.Fatal("duplicate commit accepted")
	}
	if _, err := g.Add(TxHistory{ID: 2, TN: 1, Writes: []Op{{Key: "y", VersionTN: 7}}}); err == nil {
		t.Fatal("duplicate read-write tn accepted")
	}
	if _, err := g.Add(TxHistory{ID: 3, TN: 3, Writes: []Op{{Key: "x", VersionTN: 1}}}); err == nil {
		t.Fatal("duplicate version accepted")
	}
	if _, err := g.Add(TxHistory{ID: 4, TN: 4, Writes: []Op{{Key: "x", VersionTN: 0}}}); err == nil {
		t.Fatal("write of version 0 accepted")
	}
	// Failed Adds must not install anything.
	if g.Len() != 1 || g.Writers() != 1 {
		t.Fatalf("failed adds changed the graph: len=%d writers=%d", g.Len(), g.Writers())
	}
}

// Eviction removes the node, its index entries and incident edges, but
// keeps derived edges between survivors (they remain genuine MVSG
// edges), and never yields false-positive cycles.
func TestGraphEviction(t *testing.T) {
	g := NewGraph(Windowed)
	// A chain of writers each reading the previous version of x.
	const n = 8
	for i := uint64(1); i <= n; i++ {
		tx := TxHistory{ID: i, TN: i, Writes: []Op{{Key: "x", VersionTN: i}}}
		if i > 1 {
			tx.Reads = []Op{{Key: "x", VersionTN: i - 1}}
		}
		if _, err := g.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	if g.Writers() != n {
		t.Fatalf("writers = %d, want %d", g.Writers(), n)
	}
	for g.Writers() > 3 {
		if g.EvictOldest() == 0 {
			t.Fatal("EvictOldest returned 0 with nodes retained")
		}
	}
	if g.Writers() != 3 || g.Len() != 3 {
		t.Fatalf("after eviction writers=%d len=%d, want 3/3", g.Writers(), g.Len())
	}
	if g.Evicted() != n-3 {
		t.Fatalf("evicted = %d, want %d", g.Evicted(), n-3)
	}
	// Edges among survivors (6->7->8 chain region) must remain.
	if len(g.adj[7]) == 0 {
		t.Fatal("eviction dropped edges between surviving nodes")
	}
	// No edge may touch an evicted node.
	for from, tos := range g.adj {
		if _, ok := g.nodes[from]; !ok {
			t.Fatalf("edge from evicted node %d survives", from)
		}
		for to := range tos {
			if _, ok := g.nodes[to]; !ok {
				t.Fatalf("edge to evicted node %d survives", to)
			}
		}
	}
	if c := g.FindCycle(); c != nil {
		t.Fatalf("acyclic history produced cycle %v after eviction", c)
	}
	// The graph keeps working after eviction.
	if _, err := g.Add(TxHistory{ID: n + 1, TN: n + 1,
		Reads:  []Op{{Key: "x", VersionTN: n}},
		Writes: []Op{{Key: "x", VersionTN: n + 1}}}); err != nil {
		t.Fatal(err)
	}
}

// The per-edge cycle probe: a cycle is visible the moment its closing
// edge arrives, as a Path from the edge head back to its tail.
func TestGraphPathFindsCycleIncrementally(t *testing.T) {
	// The A1 anomaly shape: T1 (tn 1) reads T2's version of x (tn 2) and
	// overwrites it with its own, smaller-numbered version; a reader of
	// x@2 then orders T1 before T2, closing T1 -> T2 -> T1.
	g := NewGraph(Windowed)
	if _, err := g.Add(TxHistory{ID: 2, TN: 2, Writes: []Op{{Key: "x", VersionTN: 2}}}); err != nil {
		t.Fatal(err)
	}
	edges, err := g.Add(TxHistory{ID: 1, TN: 1,
		Reads:  []Op{{Key: "x", VersionTN: 2}},
		Writes: []Op{{Key: "x", VersionTN: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if cycleClosedBy(g, edges) {
		t.Fatal("cycle reported before the closing read arrived")
	}
	edges, err = g.Add(TxHistory{ID: 3, TN: 3, Reads: []Op{{Key: "x", VersionTN: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !cycleClosedBy(g, edges) {
		t.Fatalf("closing edge did not reveal the cycle; new edges %v", edges)
	}
	if g.FindCycle() == nil {
		t.Fatal("FindCycle missed the cycle Path found")
	}
}

func cycleClosedBy(g *Graph, edges []Edge) bool {
	for _, e := range edges {
		if g.Path(e.To, e.From) != nil {
			return true
		}
	}
	return false
}

func TestGraphPathNoPath(t *testing.T) {
	g := NewGraph(Windowed)
	for i := uint64(1); i <= 3; i++ {
		if _, err := g.Add(TxHistory{ID: i, TN: i, Writes: []Op{{Key: fmt.Sprintf("k%d", i), VersionTN: i}}}); err != nil {
			t.Fatal(err)
		}
	}
	if p := g.Path(1, 3); p != nil {
		t.Fatalf("found path %v in edgeless graph", p)
	}
}
