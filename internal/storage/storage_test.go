package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestReadVisiblePicksLargestAtMost(t *testing.T) {
	o := newObject()
	for _, tn := range []uint64{2, 5, 9} {
		o.InstallCommitted(Version{TN: tn, Data: []byte{byte(tn)}})
	}
	tests := []struct {
		sn     uint64
		wantTN uint64
		ok     bool
	}{
		{0, 0, false},
		{1, 0, false},
		{2, 2, true},
		{4, 2, true},
		{5, 5, true},
		{8, 5, true},
		{9, 9, true},
		{100, 9, true},
	}
	for _, tc := range tests {
		v, ok := o.ReadVisible(tc.sn)
		if ok != tc.ok || (ok && v.TN != tc.wantTN) {
			t.Errorf("ReadVisible(%d) = (%v,%v), want (%d,%v)", tc.sn, v.TN, ok, tc.wantTN, tc.ok)
		}
	}
}

func TestInstallOutOfOrderKeepsChainSorted(t *testing.T) {
	o := newObject()
	for _, tn := range []uint64{5, 2, 9, 7, 1} {
		o.InstallCommitted(Version{TN: tn})
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	vs := o.Versions()
	if len(vs) != 5 {
		t.Fatalf("len = %d, want 5", len(vs))
	}
	for i, want := range []uint64{1, 2, 5, 7, 9} {
		if vs[i].TN != want {
			t.Fatalf("vs[%d].TN = %d, want %d", i, vs[i].TN, want)
		}
	}
}

func TestDuplicateInstallPanics(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.InstallCommitted(Version{TN: 3})
}

func TestTombstoneVisibility(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 1, Data: []byte("v1")})
	o.InstallCommitted(Version{TN: 3, Tombstone: true})
	if v, ok := o.ReadVisible(2); !ok || v.Tombstone {
		t.Fatalf("sn=2: got (%+v,%v), want live v1", v, ok)
	}
	if v, ok := o.ReadVisible(3); !ok || !v.Tombstone {
		t.Fatalf("sn=3: got (%+v,%v), want tombstone", v, ok)
	}
}

func TestTOWriteRejectsStaleWriter(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 0})
	// A read by tn=5 raises r-ts.
	if _, ok := o.TORead(5); !ok {
		t.Fatal("TORead(5) found nothing")
	}
	// Writer tn=3 < r-ts must be rejected (Figure 3 write rule).
	if err := o.TOWrite(3, nil, false); err != ErrConflict {
		t.Fatalf("TOWrite(3) err = %v, want ErrConflict", err)
	}
	// Writer tn=5 is allowed (>= r-ts).
	if err := o.TOWrite(5, []byte("x"), false); err != nil {
		t.Fatalf("TOWrite(5) err = %v", err)
	}
	// Writer tn=4 < w-ts(5) rejected.
	if err := o.TOWrite(4, nil, false); err != ErrConflict {
		t.Fatalf("TOWrite(4) err = %v, want ErrConflict", err)
	}
}

func TestTOReadBlocksOnOlderPendingWrite(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 0, Data: []byte("old")})
	if err := o.TOWrite(2, []byte("new"), false); err != nil {
		t.Fatal(err)
	}

	got := make(chan Version)
	go func() {
		v, _ := o.TORead(5) // must wait for T2's pending write
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("TORead(5) returned %+v before pending write resolved", v)
	case <-time.After(20 * time.Millisecond):
	}

	o.ResolvePending(2, true)
	select {
	case v := <-got:
		if v.TN != 2 || string(v.Data) != "new" {
			t.Fatalf("TORead(5) = %+v, want version 2", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TORead never woke after commit")
	}
	if o.Waits() == 0 {
		t.Fatal("expected at least one recorded wait")
	}
}

func TestTOReadAfterAbortSeesOldVersion(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 1, Data: []byte("keep")})
	if err := o.TOWrite(3, []byte("drop"), false); err != nil {
		t.Fatal(err)
	}
	got := make(chan Version)
	go func() {
		v, _ := o.TORead(4)
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	o.ResolvePending(3, false) // abort
	select {
	case v := <-got:
		if v.TN != 1 {
			t.Fatalf("read version %d, want 1 after abort", v.TN)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TORead never woke after abort")
	}
}

func TestTOReadDoesNotBlockOnYoungerPending(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 1, Data: []byte("v1")})
	if err := o.TOWrite(9, []byte("future"), false); err != nil {
		t.Fatal(err)
	}
	done := make(chan Version)
	go func() {
		v, _ := o.TORead(5)
		done <- v
	}()
	select {
	case v := <-done:
		if v.TN != 1 {
			t.Fatalf("read %d, want 1", v.TN)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TORead(5) blocked on younger pending write")
	}
}

func TestTOReadOwnPending(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 0, Data: []byte("base")})
	if err := o.TOWrite(4, []byte("mine"), false); err != nil {
		t.Fatal(err)
	}
	v, ok := o.TORead(4)
	if !ok || string(v.Data) != "mine" {
		t.Fatalf("read-own-write = (%q,%v), want mine", v.Data, ok)
	}
}

func TestTOWriteBlocksOnOlderPending(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 0})
	if err := o.TOWrite(2, []byte("a"), false); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error)
	go func() { errc <- o.TOWrite(5, []byte("b"), false) }()
	select {
	case err := <-errc:
		t.Fatalf("TOWrite(5) returned %v before T2 resolved", err)
	case <-time.After(20 * time.Millisecond):
	}
	o.ResolvePending(2, true)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("TOWrite(5) never unblocked")
	}
	o.ResolvePending(5, true)
	if got := o.LatestTN(); got != 5 {
		t.Fatalf("latest = %d, want 5", got)
	}
}

func TestTOWriteOverwriteOwnPending(t *testing.T) {
	o := newObject()
	if err := o.TOWrite(2, []byte("first"), false); err != nil {
		t.Fatal(err)
	}
	if err := o.TOWrite(2, []byte("second"), false); err != nil {
		t.Fatal(err)
	}
	if n := o.PendingCount(); n != 1 {
		t.Fatalf("pending count = %d, want 1", n)
	}
	o.ResolvePending(2, true)
	v, _ := o.ReadVisible(2)
	if string(v.Data) != "second" {
		t.Fatalf("data = %q, want second", v.Data)
	}
}

func TestSnapshotReadWait(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 1, Data: []byte("v1")})
	if err := o.TOWrite(3, []byte("v3"), false); err != nil {
		t.Fatal(err)
	}
	done := make(chan Version)
	go func() {
		v, _, waited := o.SnapshotReadWait(4)
		if !waited {
			t.Error("SnapshotReadWait did not report waiting")
		}
		done <- v
	}()
	select {
	case <-done:
		t.Fatal("SnapshotReadWait(4) did not block on pending tn=3")
	case <-time.After(20 * time.Millisecond):
	}
	o.ResolvePending(3, true)
	if v := <-done; v.TN != 3 {
		t.Fatalf("read %d, want 3", v.TN)
	}
}

func TestReadVisibleWhere(t *testing.T) {
	o := newObject()
	for _, tn := range []uint64{1, 3, 5, 7} {
		o.InstallCommitted(Version{TN: tn, Data: []byte{byte(tn)}})
	}
	admit := func(tn uint64) bool { return tn != 5 && tn != 7 }
	v, ok := o.ReadVisibleWhere(6, admit)
	if !ok || v.TN != 3 {
		t.Fatalf("got (%d,%v), want 3 (skipping non-admitted 5)", v.TN, ok)
	}
	if _, ok := o.ReadVisibleWhere(6, func(uint64) bool { return false }); ok {
		t.Fatal("admitted nothing but found a version")
	}
	if v, ok := o.ReadVisibleWhere(100, func(uint64) bool { return true }); !ok || v.TN != 7 {
		t.Fatalf("got (%d,%v), want 7", v.TN, ok)
	}
}

func TestPrune(t *testing.T) {
	o := newObject()
	for tn := uint64(1); tn <= 10; tn++ {
		o.InstallCommitted(Version{TN: tn})
	}
	// watermark 6: newest version <= 6 is tn=6; drop 1..5.
	if got := o.Prune(6); got != 5 {
		t.Fatalf("pruned %d, want 5", got)
	}
	if v, ok := o.ReadVisible(6); !ok || v.TN != 6 {
		t.Fatalf("ReadVisible(6) = (%v,%v), want 6", v.TN, ok)
	}
	if v, ok := o.ReadVisible(7); !ok || v.TN != 7 {
		t.Fatalf("ReadVisible(7) = (%v,%v), want 7", v.TN, ok)
	}
	// Second prune at the same watermark is a no-op.
	if got := o.Prune(6); got != 0 {
		t.Fatalf("second prune = %d, want 0", got)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPruneKeepsNewestBelowWatermarkOnly(t *testing.T) {
	o := newObject()
	o.InstallCommitted(Version{TN: 2})
	o.InstallCommitted(Version{TN: 8})
	// watermark 5: newest <= 5 is tn=2; nothing before it.
	if got := o.Prune(5); got != 0 {
		t.Fatalf("pruned %d, want 0", got)
	}
	if n := o.VersionCount(); n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestStoreGetOrCreate(t *testing.T) {
	s := NewStore(4)
	a := s.GetOrCreate("k")
	b := s.GetOrCreate("k")
	if a != b {
		t.Fatal("GetOrCreate returned distinct objects for same key")
	}
	if s.Get("absent") != nil {
		t.Fatal("Get(absent) != nil")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreBootstrapAndRange(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 100; i++ {
		s.Bootstrap(fmt.Sprintf("k%03d", i), []byte{byte(i)})
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalVersions() != 100 {
		t.Fatalf("TotalVersions = %d", s.TotalVersions())
	}
	seen := 0
	s.Range(func(k string, o *Object) bool {
		seen++
		if v, ok := o.ReadVisible(0); !ok || len(v.Data) != 1 {
			t.Errorf("key %s: bad bootstrap version", k)
		}
		return true
	})
	if seen != 100 {
		t.Fatalf("Range visited %d, want 100", seen)
	}
}

func TestStoreRangeEarlyStop(t *testing.T) {
	s := NewStore(0)
	for i := 0; i < 50; i++ {
		s.Bootstrap(fmt.Sprintf("k%d", i), nil)
	}
	n := 0
	s.Range(func(string, *Object) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	s := NewStore(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("k%d", rng.Intn(32))
				o := s.GetOrCreate(k)
				o.ReadVisible(uint64(rng.Intn(100)))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 32 {
		t.Fatalf("Len = %d, want <= 32", s.Len())
	}
}

// Property: ReadVisible(sn) equals a linear scan for the max TN <= sn.
func TestPropertyReadVisibleMatchesScan(t *testing.T) {
	f := func(tns []uint64, sn uint64) bool {
		o := newObject()
		seen := map[uint64]bool{}
		for _, tn := range tns {
			tn %= 1000
			if tn == 0 || seen[tn] {
				continue
			}
			seen[tn] = true
			o.InstallCommitted(Version{TN: tn})
		}
		sn %= 1200
		var want uint64
		found := false
		for tn := range seen {
			if tn <= sn && tn >= want {
				want = tn
				found = true
			}
		}
		v, ok := o.ReadVisible(sn)
		if ok != found {
			return false
		}
		return !ok || v.TN == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pruning at any watermark never changes the result of
// ReadVisible at snapshots >= watermark.
func TestPropertyPrunePreservesVisibility(t *testing.T) {
	f := func(tns []uint64, wm uint64) bool {
		o := newObject()
		seen := map[uint64]bool{}
		for _, tn := range tns {
			tn = tn%500 + 1
			if seen[tn] {
				continue
			}
			seen[tn] = true
			o.InstallCommitted(Version{TN: tn})
		}
		wm %= 600
		type res struct {
			tn uint64
			ok bool
		}
		before := map[uint64]res{}
		for sn := wm; sn < wm+50; sn++ {
			v, ok := o.ReadVisible(sn)
			before[sn] = res{v.TN, ok}
		}
		o.Prune(wm)
		if err := o.CheckInvariants(); err != nil {
			return false
		}
		for sn := wm; sn < wm+50; sn++ {
			v, ok := o.ReadVisible(sn)
			if before[sn] != (res{v.TN, ok}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
