// Package storage implements the multiversion object store substrate that
// every engine in this repository is built on.
//
// Each object (key) carries a chain of committed versions ordered by the
// transaction number of their creator, plus a set of pending (uncommitted)
// versions, plus the read/write timestamps used by timestamp-ordering
// protocols. The paper's read rule — "return x_j with the largest version
// <= sn(T)" (Figure 2) — is ReadVisible; the timestamp-ordering rules of
// Figure 3 are TORead/TOWrite.
//
// The store is sharded by key hash so that unrelated objects do not
// contend; each object has its own mutex and condition variable (used for
// the pending-write blocking that Figure 3 prescribes).
package storage

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"

	"mvdb/internal/index"
)

// ErrConflict is returned by TOWrite when the timestamp-ordering rule
// rejects a write (r-ts or w-ts of the object exceeds the writer's tn).
// The transaction must abort; the paper's protocols restart it with a new
// transaction number.
var ErrConflict = errors.New("storage: timestamp-ordering conflict")

// ErrConflictRO is a variant of ErrConflict reporting that the offending
// r-ts was last raised by a read-only transaction. It only arises in the
// Reed-style MVTO baseline, where read-only transactions update r-ts; the
// paper's version-control engines structurally never produce it
// (experiment E2). It unwraps to ErrConflict.
var ErrConflictRO = fmt.Errorf("%w (r-ts raised by a read-only transaction)", ErrConflict)

// Version is one committed version of an object.
type Version struct {
	// TN is the transaction number of the creator; it doubles as the
	// version number (paper Section 3.2: "the version number most often
	// corresponds to ... the transaction number of the transaction that
	// wrote that version").
	TN uint64
	// Data is the version's value. It must not be mutated after install.
	Data []byte
	// Tombstone marks a deletion: the object logically does not exist at
	// snapshots that resolve to this version.
	Tombstone bool
}

// Pending is an uncommitted version installed by a granted-but-uncommitted
// write (timestamp ordering calls these "pending writes").
type Pending struct {
	TN        uint64
	Data      []byte
	Tombstone bool
}

// Object is one key's synchronization and version state.
type Object struct {
	mu   sync.Mutex
	cond sync.Cond

	versions []Version // ascending TN
	pending  []Pending // ascending TN
	rts      uint64    // largest tn that read the most recent version
	rtsRO    bool      // r-ts was last raised by a read-only transaction
	wts      uint64    // largest tn that wrote (including pending)

	waits uint64 // number of times a request blocked on a pending write
}

func newObject() *Object {
	o := &Object{}
	o.cond.L = &o.mu
	return o
}

// ReadVisible returns the committed version with the largest TN <= sn,
// implementing the read rule of paper Figure 2. ok is false when no such
// version exists (the object was created after the snapshot). A returned
// tombstone means the object was deleted as of sn; callers translate that
// to "not found" while still learning the version identity for history
// checking.
func (o *Object) ReadVisible(sn uint64) (v Version, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.readVisibleLocked(sn)
}

func (o *Object) readVisibleLocked(sn uint64) (Version, bool) {
	i := sort.Search(len(o.versions), func(i int) bool { return o.versions[i].TN > sn })
	if i == 0 {
		return Version{}, false
	}
	return o.versions[i-1], true
}

// LatestCommitted returns the newest committed version. Two-phase-locking
// read-write transactions use it: under a read lock the latest committed
// version is guaranteed current (paper Section 4.4, sn(T) = infinity).
func (o *Object) LatestCommitted() (Version, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.versions) == 0 {
		return Version{}, false
	}
	return o.versions[len(o.versions)-1], true
}

// LatestTN returns the TN of the newest committed version, or 0 if none.
// Optimistic validation compares it against the TN observed at read time.
func (o *Object) LatestTN() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.versions) == 0 {
		return 0
	}
	return o.versions[len(o.versions)-1].TN
}

// InstallCommitted inserts a committed version. Versions may be installed
// out of TN order across objects, but for a single object callers must
// never install a version older than one some snapshot could already have
// read past; the engines guarantee this by construction. The chain is kept
// sorted.
func (o *Object) InstallCommitted(v Version) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.installCommittedLocked(v)
}

func (o *Object) installCommittedLocked(v Version) {
	n := len(o.versions)
	if n == 0 || o.versions[n-1].TN < v.TN {
		o.versions = append(o.versions, v)
		return
	}
	i := sort.Search(n, func(i int) bool { return o.versions[i].TN >= v.TN })
	if i < n && o.versions[i].TN == v.TN {
		panic(fmt.Sprintf("storage: duplicate version tn=%d", v.TN))
	}
	o.versions = append(o.versions, Version{})
	copy(o.versions[i+1:], o.versions[i:])
	o.versions[i] = v
}

// --- Timestamp-ordering operations (paper Figure 3) ---

// TORead performs a timestamp-ordering read for a read-write transaction
// with transaction number tn:
//
//	r-ts(x) <- MAX(r-ts(x), tn)
//	return the version with the largest number <= tn,
//	waiting while an older transaction's write is pending.
//
// If the transaction itself has a pending write on the object, that write
// is returned (read-own-write; the paper's model forbids r after w but the
// library supports it).
func (o *Object) TORead(tn uint64) (Version, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.rts < tn {
		o.rts = tn
		o.rtsRO = false
	}
	for {
		if p, ok := o.ownPendingLocked(tn); ok {
			return Version{TN: p.TN, Data: p.Data, Tombstone: p.Tombstone}, true
		}
		if !o.hasPendingAtMostLocked(tn) {
			return o.readVisibleLocked(tn)
		}
		o.waits++
		o.cond.Wait()
	}
}

// SnapshotReadWait performs a read at snapshot sn that waits for pending
// writes with TN <= sn to resolve. Reed-style multiversion timestamp
// ordering uses this for its (synchronized) read-only transactions; the
// paper's own read-only transactions never need it because sn <= vtnc
// implies every version <= sn is already committed. waited reports
// whether the read blocked (experiment E3 instrumentation).
func (o *Object) SnapshotReadWait(sn uint64) (v Version, ok, waited bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.hasPendingAtMostLocked(sn) {
		o.waits++
		waited = true
		o.cond.Wait()
	}
	v, ok = o.readVisibleLocked(sn)
	return v, ok, waited
}

// ReadVisibleWhere returns the version with the largest TN <= sn whose
// creator satisfies the admit predicate. It implements the read rule of
// the Chan et al. MV2PL baseline (paper Section 2): "finding a largest
// version of an object smaller than the start timestamp of the
// transaction, and ensuring that the creator of this version appears in
// the copy of the completed transaction list". The per-read predicate
// scan is part of the overhead the paper's version control eliminates.
func (o *Object) ReadVisibleWhere(sn uint64, admit func(tn uint64) bool) (Version, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i := sort.Search(len(o.versions), func(i int) bool { return o.versions[i].TN > sn })
	for i--; i >= 0; i-- {
		if admit(o.versions[i].TN) {
			return o.versions[i], true
		}
	}
	return Version{}, false
}

// SetRTS raises r-ts(x) to at least tn. Reed-style MVTO applies it for
// read-only transactions too — the overhead the paper eliminates. ro
// marks whether the reader is a read-only transaction; the flag feeds the
// abort-attribution statistics of experiment E2.
func (o *Object) SetRTS(tn uint64, ro bool) {
	o.mu.Lock()
	if o.rts < tn {
		o.rts = tn
		o.rtsRO = ro
	}
	o.mu.Unlock()
}

// TOWrite performs a timestamp-ordering write: reject if a younger
// transaction already read or wrote the object; otherwise wait for older
// pending writes and install a pending version. A second write by the
// same transaction overwrites its pending version in place.
func (o *Object) TOWrite(tn uint64, data []byte, tombstone bool) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.rts > tn && o.rtsRO {
			return ErrConflictRO
		}
		if o.rts > tn || o.wts > tn {
			return ErrConflict
		}
		if i, ok := o.pendingIndexLocked(tn); ok {
			o.pending[i].Data = data
			o.pending[i].Tombstone = tombstone
			return nil
		}
		if !o.hasPendingBelowLocked(tn) {
			break
		}
		o.waits++
		o.cond.Wait()
	}
	o.insertPendingLocked(Pending{TN: tn, Data: data, Tombstone: tombstone})
	if o.wts < tn {
		o.wts = tn
	}
	return nil
}

// ResolvePending commits (install) or aborts (drop) the pending version
// created by transaction tn, waking all waiters. It is a no-op if the
// transaction has no pending version here.
func (o *Object) ResolvePending(tn uint64, commit bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i, ok := o.pendingIndexLocked(tn)
	if !ok {
		return
	}
	p := o.pending[i]
	o.pending = append(o.pending[:i], o.pending[i+1:]...)
	if commit {
		o.installCommittedLocked(Version{TN: p.TN, Data: p.Data, Tombstone: p.Tombstone})
	}
	o.cond.Broadcast()
}

// RTS returns the object's read timestamp.
func (o *Object) RTS() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.rts }

// WTS returns the object's write timestamp (including pending writes).
func (o *Object) WTS() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.wts }

// Waits reports how many times a request blocked on this object's pending
// writes (experiment E3 instrumentation).
func (o *Object) Waits() uint64 { o.mu.Lock(); defer o.mu.Unlock(); return o.waits }

// VersionCount returns the number of committed versions (GC metrics).
func (o *Object) VersionCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.versions)
}

// PendingCount returns the number of pending versions.
func (o *Object) PendingCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.pending)
}

// Versions returns a copy of the committed chain (tests and tools).
func (o *Object) Versions() []Version {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Version, len(o.versions))
	copy(out, o.versions)
	return out
}

// Prune discards committed versions that are invisible to every snapshot
// >= watermark: all versions strictly older than the newest version whose
// TN <= watermark. It returns the number of versions discarded. This is
// the garbage-collection rule of paper Section 6: never discard a version
// "as young as or younger than vtnc" (our watermark additionally accounts
// for older active read-only transactions).
func (o *Object) Prune(watermark uint64) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	i := sort.Search(len(o.versions), func(i int) bool { return o.versions[i].TN > watermark })
	// versions[i-1] is the newest version <= watermark; it must survive,
	// everything before it is unreachable.
	if i <= 1 {
		return 0
	}
	drop := i - 1
	o.versions = append(o.versions[:0], o.versions[drop:]...)
	return drop
}

// CheckInvariants validates chain ordering; for tests.
func (o *Object) CheckInvariants() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := 1; i < len(o.versions); i++ {
		if o.versions[i-1].TN >= o.versions[i].TN {
			return fmt.Errorf("storage: version chain out of order at %d", i)
		}
	}
	for i := 1; i < len(o.pending); i++ {
		if o.pending[i-1].TN >= o.pending[i].TN {
			return fmt.Errorf("storage: pending list out of order at %d", i)
		}
	}
	return nil
}

func (o *Object) ownPendingLocked(tn uint64) (Pending, bool) {
	if i, ok := o.pendingIndexLocked(tn); ok {
		return o.pending[i], true
	}
	return Pending{}, false
}

func (o *Object) pendingIndexLocked(tn uint64) (int, bool) {
	for i := range o.pending {
		if o.pending[i].TN == tn {
			return i, true
		}
	}
	return 0, false
}

// hasPendingAtMostLocked reports whether a pending write by another
// transaction with TN <= tn exists (the Figure 3 read-blocking condition).
func (o *Object) hasPendingAtMostLocked(tn uint64) bool {
	return len(o.pending) > 0 && o.pending[0].TN <= tn
}

// hasPendingBelowLocked reports whether a pending write with TN < tn
// exists (the Figure 3 write-blocking condition).
func (o *Object) hasPendingBelowLocked(tn uint64) bool {
	return len(o.pending) > 0 && o.pending[0].TN < tn
}

func (o *Object) insertPendingLocked(p Pending) {
	n := len(o.pending)
	i := sort.Search(n, func(i int) bool { return o.pending[i].TN >= p.TN })
	o.pending = append(o.pending, Pending{})
	copy(o.pending[i+1:], o.pending[i:])
	o.pending[i] = p
}

// --- Store ---

const defaultShards = 64

// Store is a sharded map from key to Object, plus an ordered key index
// for prefix scans.
type Store struct {
	seed   maphash.Seed
	shards []shard
	mask   uint64
	idx    *index.SkipList
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Object
}

// NewStore creates a store with the given shard count (rounded up to a
// power of two; 0 selects the default).
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = defaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{seed: maphash.MakeSeed(), shards: make([]shard, n), mask: uint64(n - 1), idx: index.New(1)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Object)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := maphash.String(s.seed, key)
	return &s.shards[h&s.mask]
}

// Get returns the object for key, or nil if the key has never been
// written.
func (s *Store) Get(key string) *Object {
	sh := s.shardFor(key)
	sh.mu.RLock()
	o := sh.m[key]
	sh.mu.RUnlock()
	return o
}

// GetOrCreate returns the object for key, creating an empty one if
// needed.
func (s *Store) GetOrCreate(key string) *Object {
	sh := s.shardFor(key)
	sh.mu.RLock()
	o := sh.m[key]
	sh.mu.RUnlock()
	if o != nil {
		return o
	}
	sh.mu.Lock()
	if o = sh.m[key]; o == nil {
		o = newObject()
		sh.m[key] = o
	}
	sh.mu.Unlock()
	s.idx.Insert(key)
	return o
}

// Range calls fn for every key until fn returns false. The iteration
// order is unspecified and the snapshot is loose (keys created during
// iteration may or may not appear).
func (s *Store) Range(fn func(key string, o *Object) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		keys := make([]string, 0, len(sh.m))
		for k := range sh.m {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
		for _, k := range keys {
			sh.mu.RLock()
			o := sh.m[k]
			sh.mu.RUnlock()
			if o == nil {
				continue
			}
			if !fn(k, o) {
				return
			}
		}
	}
}

// RangeOrdered calls fn for every key with the given prefix in ascending
// key order, until fn returns false. Unlike Range, iteration order is
// guaranteed; snapshot scans are built on it.
func (s *Store) RangeOrdered(prefix string, fn func(key string, o *Object) bool) {
	s.idx.RangePrefix(prefix, func(key string) bool {
		o := s.Get(key)
		if o == nil {
			return true // index insert raced ahead of the map insert
		}
		return fn(key, o)
	})
}

// Len returns the number of keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// TotalVersions returns the number of committed versions across all
// objects (GC experiment instrumentation).
func (s *Store) TotalVersions() int {
	n := 0
	s.Range(func(_ string, o *Object) bool {
		n += o.VersionCount()
		return true
	})
	return n
}

// TotalWaits sums Object.Waits across the store.
func (s *Store) TotalWaits() uint64 {
	var n uint64
	s.Range(func(_ string, o *Object) bool {
		n += o.Waits()
		return true
	})
	return n
}

// Bootstrap installs an initial committed version (TN 0 by convention)
// for key. It is used to load data before transaction processing starts.
func (s *Store) Bootstrap(key string, data []byte) {
	s.GetOrCreate(key).InstallCommitted(Version{TN: 0, Data: data})
}
