package storage

import (
	"fmt"
	"testing"
)

func benchObjectWithVersions(n int) *Object {
	o := newObject()
	for i := 1; i <= n; i++ {
		o.InstallCommitted(Version{TN: uint64(i), Data: []byte("v")})
	}
	return o
}

func BenchmarkReadVisible(b *testing.B) {
	for _, depth := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			o := benchObjectWithVersions(depth)
			sn := uint64(depth/2 + 1) // depth=1: version 1 itself
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := o.ReadVisible(sn); !ok {
					b.Fatal("missing version")
				}
			}
		})
	}
}

func BenchmarkInstallCommittedAppend(b *testing.B) {
	o := newObject()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.InstallCommitted(Version{TN: uint64(i + 1)})
	}
}

func BenchmarkTOReadWrite(b *testing.B) {
	o := newObject()
	o.InstallCommitted(Version{TN: 0})
	b.ReportAllocs()
	tn := uint64(1)
	for i := 0; i < b.N; i++ {
		if err := o.TOWrite(tn, []byte("v"), false); err != nil {
			b.Fatal(err)
		}
		o.ResolvePending(tn, true)
		if _, ok := o.TORead(tn); !ok {
			b.Fatal("read miss")
		}
		tn++
	}
}

func BenchmarkStoreGetOrCreate(b *testing.B) {
	s := NewStore(0)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%06d", i)
		s.Bootstrap(keys[i], nil)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.GetOrCreate(keys[i&1023])
			i++
		}
	})
}

func BenchmarkPrune(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := benchObjectWithVersions(128)
		b.StartTimer()
		o.Prune(100)
	}
}
