package baseline

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/storage"
)

// ctl is the completed transaction list of Chan et al. It is compacted
// into a floor (every transaction number <= floor has committed) plus the
// out-of-order tail; the tail is exactly what a long-running transaction
// inflates, which is what experiment E4 measures.
type ctl struct {
	mu     sync.Mutex
	floor  uint64
	extras map[uint64]struct{}
}

func newCTL() *ctl { return &ctl{extras: make(map[uint64]struct{})} }

// add records tn as committed and compacts the tail.
func (c *ctl) add(tn uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tn <= c.floor {
		return
	}
	c.extras[tn] = struct{}{}
	for {
		if _, ok := c.extras[c.floor+1]; !ok {
			break
		}
		c.floor++
		delete(c.extras, c.floor)
	}
}

// snapshot returns a copy of the list: the O(tail) cost every read-only
// transaction pays at begin in this protocol ("the maintenance and usage
// of the completed transaction list ... is cumbersome", Section 2).
func (c *ctl) snapshot() ctlCopy {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := ctlCopy{floor: c.floor}
	if len(c.extras) > 0 {
		cp.extras = make([]uint64, 0, len(c.extras))
		for tn := range c.extras {
			cp.extras = append(cp.extras, tn)
		}
		sort.Slice(cp.extras, func(i, j int) bool { return cp.extras[i] < cp.extras[j] })
	}
	return cp
}

// tailLen returns the current out-of-order tail length (instrumentation).
func (c *ctl) tailLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.extras)
}

// ctlCopy is a read-only transaction's private copy of the list.
type ctlCopy struct {
	floor  uint64
	extras []uint64
}

// contains reports whether tn is in the copied list. The binary search on
// every version probe is the per-read overhead of this baseline.
func (c *ctlCopy) contains(tn uint64) bool {
	if tn <= c.floor {
		return true
	}
	i := sort.Search(len(c.extras), func(i int) bool { return c.extras[i] >= tn })
	return i < len(c.extras) && c.extras[i] == tn
}

// size returns the number of entries materialized by the copy.
func (c *ctlCopy) size() int { return len(c.extras) + 1 }

// MV2PLCTL is the Chan et al. multiversion 2PL baseline (paper Section 2):
// read-write transactions run strict two-phase locking and receive their
// transaction number at the lock-point; read-only transactions carry a
// start timestamp and a copy of the completed transaction list, and every
// read scans for the largest version that is both below the start
// timestamp and created by a listed transaction.
type MV2PLCTL struct {
	store *storage.Store
	locks *lock.Manager
	list  *ctl
	tnc   atomic.Uint64 // transaction numbers, assigned at lock-point
	ids   atomic.Uint64
	ages  atomic.Uint64
	rec   engine.Recorder

	commitsRO      atomic.Uint64
	commitsRW      atomic.Uint64
	abortsConflict atomic.Uint64
	abortsDeadlock atomic.Uint64
	abortsUser     atomic.Uint64
	ctlCopied      atomic.Uint64 // total CTL entries copied by RO begins
	ctlProbes      atomic.Uint64 // membership probes during RO reads
	closed         atomic.Bool
}

// NewMV2PLCTL creates the Chan-style baseline engine.
func NewMV2PLCTL(shards int, policy lock.Policy, timeout time.Duration, rec engine.Recorder) *MV2PLCTL {
	if rec == nil {
		rec = engine.NopRecorder{}
	}
	return &MV2PLCTL{
		store: storage.NewStore(shards),
		locks: lock.NewManager(policy, timeout),
		list:  newCTL(),
		rec:   rec,
	}
}

// Name implements engine.Engine.
func (e *MV2PLCTL) Name() string { return "mv2pl+ctl(chan)" }

// Store exposes the underlying store.
func (e *MV2PLCTL) Store() *storage.Store { return e.store }

// Bootstrap loads initial data as version 0.
func (e *MV2PLCTL) Bootstrap(data map[string][]byte) error {
	if e.ids.Load() != 0 {
		return errors.New("baseline: Bootstrap after transactions started")
	}
	for k, v := range data {
		e.store.Bootstrap(k, v)
	}
	return nil
}

// Begin implements engine.Engine.
func (e *MV2PLCTL) Begin(class engine.Class) (engine.Tx, error) {
	if e.closed.Load() {
		return nil, errors.New("baseline: engine closed")
	}
	id := e.ids.Add(1)
	if class == engine.ReadOnly {
		t := &ctlROTx{
			e:  e,
			id: id,
			// Start timestamp: everything assigned so far is "before" us.
			st:   e.tnc.Load(),
			list: e.list.snapshot(),
		}
		e.ctlCopied.Add(uint64(t.list.size()))
		e.rec.RecordBegin(id, engine.ReadOnly)
		return t, nil
	}
	e.locks.Begin(id, e.ages.Add(1))
	t := &ctlRWTx{e: e, id: id, buf: make(map[string]bufWrite)}
	e.rec.RecordBegin(id, engine.ReadWrite)
	return t, nil
}

// Stats implements engine.Engine.
func (e *MV2PLCTL) Stats() map[string]int64 {
	return map[string]int64{
		"commits.ro":      int64(e.commitsRO.Load()),
		"commits.rw":      int64(e.commitsRW.Load()),
		"aborts.conflict": int64(e.abortsConflict.Load()),
		"aborts.deadlock": int64(e.abortsDeadlock.Load()),
		"aborts.user":     int64(e.abortsUser.Load()),
		"rw.aborts.by_ro": 0,
		"ro.blocked":      0,
		"ctl.copied":      int64(e.ctlCopied.Load()),
		"ctl.probes":      int64(e.ctlProbes.Load()),
		"ctl.tail":        int64(e.list.tailLen()),
		"lock.waits":      int64(e.locks.Waits()),
		"lock.deadlocks":  int64(e.locks.Deadlocks()),
	}
}

// Close implements engine.Engine.
func (e *MV2PLCTL) Close() error {
	e.closed.Store(true)
	return nil
}

// HoldNumber simulates a transaction that has passed its lock point —
// its transaction number is allocated — but has not yet committed. In
// Chan's protocol this is exactly what creates holes in the completed
// transaction list: every later committer lands in the out-of-order tail
// until release is called. Experiment E4 uses it to reproduce the CTL
// growth the paper complains about (Section 2).
func (e *MV2PLCTL) HoldNumber() (release func()) {
	tn := e.tnc.Add(1)
	return func() { e.list.add(tn) }
}

// CTLTail returns the current out-of-order tail length.
func (e *MV2PLCTL) CTLTail() int { return e.list.tailLen() }

type bufWrite struct {
	data      []byte
	tombstone bool
}

// ctlROTx is a Chan-style read-only transaction.
type ctlROTx struct {
	e    *MV2PLCTL
	id   uint64
	st   uint64
	list ctlCopy
	done bool
}

// Get implements engine.Tx: the largest version <= st whose creator is in
// the copied completed transaction list.
func (t *ctlROTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	o := t.e.store.Get(key)
	if o == nil {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	probes := 0
	v, ok := o.ReadVisibleWhere(t.st, func(tn uint64) bool {
		probes++
		return t.list.contains(tn)
	})
	t.e.ctlProbes.Add(uint64(probes))
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx.
func (t *ctlROTx) Put(string, []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Delete implements engine.Tx.
func (t *ctlROTx) Delete(string) error {
	if t.done {
		return engine.ErrTxDone
	}
	return engine.ErrReadOnly
}

// Commit implements engine.Tx.
func (t *ctlROTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.e.rec.RecordCommit(t.id, t.st)
	t.e.commitsRO.Add(1)
	return nil
}

// Abort implements engine.Tx.
func (t *ctlROTx) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.e.abortsUser.Add(1)
	t.e.rec.RecordAbort(t.id)
}

// ID implements engine.Tx.
func (t *ctlROTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *ctlROTx) Class() engine.Class { return engine.ReadOnly }

// SN implements engine.Tx.
func (t *ctlROTx) SN() (uint64, bool) { return t.st, true }

// ctlRWTx is a strict-2PL read-write transaction with lock-point
// transaction numbers.
type ctlRWTx struct {
	e    *MV2PLCTL
	id   uint64
	buf  map[string]bufWrite
	done bool
	tn   uint64
}

// Get implements engine.Tx.
func (t *ctlRWTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if w, ok := t.buf[key]; ok {
		if w.tombstone {
			return nil, engine.ErrNotFound
		}
		return w.data, nil
	}
	if err := t.acquire(key, lock.Shared); err != nil {
		return nil, err
	}
	o := t.e.store.Get(key)
	if o == nil {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	v, ok := o.LatestCommitted()
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx.
func (t *ctlRWTx) Put(key string, value []byte) error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.acquire(key, lock.Exclusive); err != nil {
		return err
	}
	t.buf[key] = bufWrite{data: value}
	return nil
}

// Delete implements engine.Tx.
func (t *ctlRWTx) Delete(key string) error {
	if t.done {
		return engine.ErrTxDone
	}
	if err := t.acquire(key, lock.Exclusive); err != nil {
		return err
	}
	t.buf[key] = bufWrite{tombstone: true}
	return nil
}

func (t *ctlRWTx) acquire(key string, mode lock.Mode) error {
	err := t.e.locks.Acquire(t.id, key, mode)
	if err == nil {
		return nil
	}
	var mapped error
	switch {
	case errors.Is(err, lock.ErrDeadlock), errors.Is(err, lock.ErrTimeout):
		t.e.abortsDeadlock.Add(1)
		mapped = engine.ErrDeadlock
	case errors.Is(err, lock.ErrWounded):
		t.e.abortsDeadlock.Add(1)
		mapped = engine.ErrWounded
	default:
		t.e.abortsConflict.Add(1)
		mapped = engine.ErrConflict
	}
	t.abortInternal()
	return mapped
}

// Commit implements engine.Tx: assign tn at the lock-point, install
// versions, enter the completed transaction list, release locks.
func (t *ctlRWTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.e.locks.Wounded(t.id) {
		t.e.abortsDeadlock.Add(1)
		t.abortInternal()
		return engine.ErrWounded
	}
	t.done = true
	t.tn = t.e.tnc.Add(1)
	for key, w := range t.buf {
		o := t.e.store.GetOrCreate(key)
		o.InstallCommitted(storage.Version{TN: t.tn, Data: w.data, Tombstone: w.tombstone})
		t.e.rec.RecordWrite(t.id, key, t.tn)
	}
	t.e.rec.RecordCommit(t.id, t.tn)
	// The transaction enters the CTL only after its updates are in place,
	// and before its locks are released — so any transaction that can have
	// observed its effects copies a list that already includes it.
	t.e.list.add(t.tn)
	t.e.locks.ReleaseAll(t.id)
	t.e.commitsRW.Add(1)
	return nil
}

// Abort implements engine.Tx.
func (t *ctlRWTx) Abort() {
	if t.done {
		return
	}
	t.e.abortsUser.Add(1)
	t.abortInternal()
}

func (t *ctlRWTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	t.e.locks.ReleaseAll(t.id)
	t.e.rec.RecordAbort(t.id)
}

// ID implements engine.Tx.
func (t *ctlRWTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *ctlRWTx) Class() engine.Class { return engine.ReadWrite }

// SN implements engine.Tx.
func (t *ctlRWTx) SN() (uint64, bool) {
	if t.tn != 0 {
		return t.tn, true
	}
	return 0, false
}
