// Package baseline implements the three comparator protocols the paper
// discusses in Section 2, re-created from the paper's own descriptions:
//
//   - MVTO: Reed's multiversion timestamp ordering [14], in which
//     read-only transactions are synchronized like everyone else — they
//     raise r-ts, block on pending writes, and can abort read-write
//     transactions.
//   - MV2PLCTL: the Chan et al. multiversion two-phase locking [7], in
//     which every read-only transaction carries a start timestamp and a
//     copy of the completed transaction list (CTL).
//   - SV2PL: single-version strict two-phase locking, the non-multiversion
//     baseline in which readers and writers block each other.
//
// Each engine implements engine.Engine, so the harness can run identical
// workloads across the paper's engines and these baselines and measure the
// differences the paper claims (experiments E1-E5).
package baseline

import (
	"errors"
	"sync/atomic"

	"mvdb/internal/engine"
	"mvdb/internal/storage"
)

// MVTO is Reed-style multiversion timestamp ordering. Read-write
// transactions follow the same rules as the paper's Figure 3; the
// difference is entirely in the read-only path, which the paper calls out
// (Section 2): reads by read-only transactions "must be synchronized with
// the operations of read-write transactions", they update r-ts, and they
// can cause write-rejection aborts of read-write transactions.
type MVTO struct {
	store *storage.Store
	ts    atomic.Uint64 // timestamp = transaction number counter
	ids   atomic.Uint64
	rec   engine.Recorder

	commitsRO      atomic.Uint64
	commitsRW      atomic.Uint64
	abortsConflict atomic.Uint64
	abortsUser     atomic.Uint64
	abortsByRO     atomic.Uint64
	roBlocked      atomic.Uint64
	closed         atomic.Bool
}

// NewMVTO creates the Reed-style baseline engine.
func NewMVTO(shards int, rec engine.Recorder) *MVTO {
	if rec == nil {
		rec = engine.NopRecorder{}
	}
	return &MVTO{store: storage.NewStore(shards), rec: rec}
}

// Name implements engine.Engine.
func (e *MVTO) Name() string { return "mvto(reed)" }

// Store exposes the underlying store.
func (e *MVTO) Store() *storage.Store { return e.store }

// Bootstrap loads initial data as version 0.
func (e *MVTO) Bootstrap(data map[string][]byte) error {
	if e.ts.Load() != 0 {
		return errors.New("baseline: Bootstrap after transactions started")
	}
	for k, v := range data {
		e.store.Bootstrap(k, v)
	}
	return nil
}

// Begin implements engine.Engine. Both classes receive a timestamp from
// the same counter: in Reed's protocol read-only transactions are ordinary
// timestamped transactions that happen not to write.
func (e *MVTO) Begin(class engine.Class) (engine.Tx, error) {
	if e.closed.Load() {
		return nil, errors.New("baseline: engine closed")
	}
	t := &mvtoTx{
		e:     e,
		id:    e.ids.Add(1),
		tn:    e.ts.Add(1),
		class: class,
	}
	if class == engine.ReadWrite {
		t.pending = make(map[string]struct{})
	}
	e.rec.RecordBegin(t.id, class)
	return t, nil
}

// Stats implements engine.Engine.
func (e *MVTO) Stats() map[string]int64 {
	return map[string]int64{
		"commits.ro":      int64(e.commitsRO.Load()),
		"commits.rw":      int64(e.commitsRW.Load()),
		"aborts.conflict": int64(e.abortsConflict.Load()),
		"aborts.user":     int64(e.abortsUser.Load()),
		"rw.aborts.by_ro": int64(e.abortsByRO.Load()),
		"ro.blocked":      int64(e.roBlocked.Load()),
		"store.waits":     int64(e.store.TotalWaits()),
	}
}

// Close implements engine.Engine.
func (e *MVTO) Close() error {
	e.closed.Store(true)
	return nil
}

type mvtoTx struct {
	e       *MVTO
	id      uint64
	tn      uint64
	class   engine.Class
	pending map[string]struct{}
	done    bool
}

// Get implements engine.Tx. Note the read-only path: it raises r-ts
// (marking the raise as read-only for abort attribution) and then blocks
// on pending writes of older transactions — the synchronization overhead
// the paper's version control removes.
func (t *mvtoTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	o := t.e.store.Get(key)
	if o == nil {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	var v storage.Version
	var ok bool
	if t.class == engine.ReadOnly {
		o.SetRTS(t.tn, true)
		var waited bool
		v, ok, waited = o.SnapshotReadWait(t.tn)
		if waited {
			t.e.roBlocked.Add(1)
		}
	} else {
		v, ok = o.TORead(t.tn)
	}
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	if _, own := t.pending[key]; !(own && v.TN == t.tn) {
		t.e.rec.RecordRead(t.id, key, v.TN)
	}
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx (read-write only).
func (t *mvtoTx) Put(key string, value []byte) error {
	return t.write(key, value, false)
}

// Delete implements engine.Tx (read-write only).
func (t *mvtoTx) Delete(key string) error {
	return t.write(key, nil, true)
}

func (t *mvtoTx) write(key string, value []byte, tombstone bool) error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.class == engine.ReadOnly {
		return engine.ErrReadOnly
	}
	o := t.e.store.GetOrCreate(key)
	if err := o.TOWrite(t.tn, value, tombstone); err != nil {
		t.e.abortsConflict.Add(1)
		if errors.Is(err, storage.ErrConflictRO) {
			// The write was rejected because a read-only transaction had
			// read the object — the interference the paper eliminates.
			t.e.abortsByRO.Add(1)
		}
		t.abortInternal()
		return engine.ErrConflict
	}
	t.pending[key] = struct{}{}
	return nil
}

// Commit implements engine.Tx.
func (t *mvtoTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	if t.class == engine.ReadOnly {
		t.e.rec.RecordCommit(t.id, t.tn)
		t.e.commitsRO.Add(1)
		return nil
	}
	for key := range t.pending {
		t.e.store.GetOrCreate(key).ResolvePending(t.tn, true)
		t.e.rec.RecordWrite(t.id, key, t.tn)
	}
	t.e.rec.RecordCommit(t.id, t.tn)
	t.e.commitsRW.Add(1)
	return nil
}

// Abort implements engine.Tx.
func (t *mvtoTx) Abort() {
	if t.done {
		return
	}
	t.e.abortsUser.Add(1)
	t.abortInternal()
}

func (t *mvtoTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	for key := range t.pending {
		t.e.store.GetOrCreate(key).ResolvePending(t.tn, false)
	}
	t.e.rec.RecordAbort(t.id)
}

// ID implements engine.Tx.
func (t *mvtoTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *mvtoTx) Class() engine.Class { return t.class }

// SN implements engine.Tx.
func (t *mvtoTx) SN() (uint64, bool) { return t.tn, true }
