package baseline

import (
	"mvdb/internal/core"
	"mvdb/internal/engine"
)

// Deliberately broken engines, built from the core engine's unsafe
// ablation flags (core.Options). They exist so the online auditor
// (internal/audit) and the offline checker (internal/history) can be
// shown to catch real serializability violations, not just pass clean
// histories: mvverify -audit runs them expecting an MVSG-cycle alarm.

// NewBrokenEarlyRegister returns a 2PL engine with ablation A1: it
// registers read-write transactions with version control at begin
// instead of at the lock-point, so the serialization order no longer
// matches the synchronization order and cycles appear in the MVSG.
func NewBrokenEarlyRegister(rec engine.Recorder) engine.Engine {
	return brokenEngine{core.New(core.Options{
		Protocol:               core.TwoPhaseLocking,
		Recorder:               rec,
		UnsafeEarlyRegister2PL: true,
	}), "broken-early-register"}
}

// NewBrokenEagerVisibility returns a T/O engine with ablation A2: vtnc
// advances in completion order rather than serialization order,
// violating the Transaction Visibility Property, so snapshot readers
// can observe inconsistent states.
func NewBrokenEagerVisibility(rec engine.Recorder) engine.Engine {
	return brokenEngine{core.New(core.Options{
		Protocol:              core.TimestampOrdering,
		Recorder:              rec,
		UnsafeEagerVisibility: true,
	}), "broken-eager-visibility"}
}

// brokenEngine renames the wrapped engine so reports cannot confuse an
// ablated engine with the correct protocol of the same name. Embedding
// the concrete engine keeps Bootstrap and the rest of the core surface.
type brokenEngine struct {
	*core.Engine
	name string
}

func (b brokenEngine) Name() string { return b.name }
