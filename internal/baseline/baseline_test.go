package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/history"
	"mvdb/internal/lock"
)

func engines(rec engine.Recorder) map[string]engine.Engine {
	return map[string]engine.Engine{
		"mvto":  NewMVTO(0, rec),
		"mv2pl": NewMV2PLCTL(0, lock.Detect, 0, rec),
		"sv2pl": NewSV2PL(0, lock.Detect, 0, rec),
	}
}

type bootstrapper interface {
	Bootstrap(map[string][]byte) error
}

func boot(t *testing.T, e engine.Engine, kv map[string]string) {
	t.Helper()
	m := make(map[string][]byte, len(kv))
	for k, v := range kv {
		m[k] = []byte(v)
	}
	if err := e.(bootstrapper).Bootstrap(m); err != nil {
		t.Fatal(err)
	}
}

func commitWrite(t *testing.T, e engine.Engine, kv map[string]string) {
	t.Helper()
	for {
		tx, err := e.Begin(engine.ReadWrite)
		if err != nil {
			t.Fatal(err)
		}
		retry := false
		for k, v := range kv {
			if err := tx.Put(k, []byte(v)); err != nil {
				if engine.Retryable(err) {
					retry = true
					break
				}
				t.Fatal(err)
			}
		}
		if retry {
			continue
		}
		if err := tx.Commit(); err != nil {
			if engine.Retryable(err) {
				continue
			}
			t.Fatal(err)
		}
		return
	}
}

func TestBasicSemanticsAllBaselines(t *testing.T) {
	for name, e := range engines(nil) {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			boot(t, e, map[string]string{"a": "0"})
			commitWrite(t, e, map[string]string{"a": "1", "b": "2"})

			ro, _ := e.Begin(engine.ReadOnly)
			if got, err := ro.Get("a"); err != nil || string(got) != "1" {
				t.Fatalf("Get(a) = (%q,%v)", got, err)
			}
			if err := ro.Put("x", nil); !errors.Is(err, engine.ErrReadOnly) {
				t.Fatalf("Put err = %v", err)
			}
			if _, err := ro.Get("absent"); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("Get(absent) err = %v", err)
			}
			if err := ro.Commit(); err != nil {
				t.Fatal(err)
			}

			// tombstones
			commitWrite(t, e, nil)
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Delete("b"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			ro2, _ := e.Begin(engine.ReadOnly)
			if _, err := ro2.Get("b"); !errors.Is(err, engine.ErrNotFound) {
				t.Fatalf("post-delete Get err = %v", err)
			}
			ro2.Commit()
		})
	}
}

// The paper, Section 2, on Reed's MVTO: "read operations issued by
// read-only transactions ... may be blocked due to a pending write".
func TestMVTOReadOnlyBlocksOnPendingWrite(t *testing.T) {
	e := NewMVTO(0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"k": "old"})

	rw, _ := e.Begin(engine.ReadWrite)
	if err := rw.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	done := make(chan string)
	go func() {
		ro, _ := e.Begin(engine.ReadOnly) // younger ts than rw
		v, _ := ro.Get("k")
		ro.Commit()
		done <- string(v)
	}()
	select {
	case v := <-done:
		t.Fatalf("MVTO read-only returned %q without blocking", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := <-done; v != "new" {
		t.Fatalf("ro read %q, want new", v)
	}
	if e.Stats()["ro.blocked"] == 0 {
		t.Fatal("ro.blocked not counted")
	}
}

// The paper, Section 2: in MVTO a read-only transaction "may also result
// in a read-only transaction causing an abort of a read-write
// transaction". Structural in Reed, impossible in the VC engines.
func TestMVTOReadOnlyCausesWriteAbort(t *testing.T) {
	e := NewMVTO(0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"k": "0"})

	rw, _ := e.Begin(engine.ReadWrite) // older
	ro, _ := e.Begin(engine.ReadOnly)  // younger ts
	if _, err := ro.Get("k"); err != nil {
		t.Fatal(err)
	}
	ro.Commit()
	err := rw.Put("k", []byte("x"))
	if !errors.Is(err, engine.ErrConflict) {
		t.Fatalf("Put err = %v, want ErrConflict", err)
	}
	if got := e.Stats()["rw.aborts.by_ro"]; got != 1 {
		t.Fatalf("rw.aborts.by_ro = %d, want 1", got)
	}
}

// Chan-style read-only transactions must skip versions of transactions
// that committed after the CTL copy was taken, yielding a consistent (if
// stale) snapshot.
func TestMV2PLCTLSnapshotSkipsUnlistedCreators(t *testing.T) {
	e := NewMV2PLCTL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"x": "0"})
	commitWrite(t, e, map[string]string{"x": "1"})

	ro, _ := e.Begin(engine.ReadOnly) // CTL copy taken now
	commitWrite(t, e, map[string]string{"x": "2"})
	if got, err := ro.Get("x"); err != nil || string(got) != "1" {
		t.Fatalf("Get(x) = (%q,%v), want 1", got, err)
	}
	ro.Commit()
	if e.Stats()["ctl.copied"] == 0 {
		t.Fatal("ctl.copied not counted")
	}
	if e.Stats()["ctl.probes"] == 0 {
		t.Fatal("ctl.probes not counted")
	}
}

// A long-running read-write transaction inflates the CTL tail: later
// committers pile up out-of-order because the lock-point numbers have a
// hole (E4's mechanism).
func TestMV2PLCTLTailGrowsBehindStraggler(t *testing.T) {
	e := NewMV2PLCTL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"slow": "0"})

	straggler, _ := e.Begin(engine.ReadWrite)
	if err := straggler.Put("slow", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// straggler holds no lock-point number yet; but tn is taken at commit
	// in this implementation, so holes come from interleaved commits. Use
	// many concurrent committers finishing in scrambled order instead.
	var wg sync.WaitGroup
	hold := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				return
			}
			<-hold
			tx.Commit()
		}(i)
	}
	close(hold)
	wg.Wait()
	if err := straggler.Commit(); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if _, err := ro.Get("slow"); err != nil {
		t.Fatal(err)
	}
	ro.Commit()
}

// Single-version 2PL: a read-only transaction blocks behind a writer —
// the interference multiversioning removes.
func TestSV2PLReadOnlyBlocksBehindWriter(t *testing.T) {
	e := NewSV2PL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"k": "old"})

	rw, _ := e.Begin(engine.ReadWrite)
	if err := rw.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	done := make(chan string)
	go func() {
		ro, _ := e.Begin(engine.ReadOnly)
		v, _ := ro.Get("k")
		ro.Commit()
		done <- string(v)
	}()
	select {
	case v := <-done:
		t.Fatalf("SV2PL reader got %q without blocking", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := <-done; v != "new" {
		t.Fatalf("reader got %q, want new", v)
	}
}

// And the dual: a writer blocks behind a read-only transaction.
func TestSV2PLWriterBlocksBehindReader(t *testing.T) {
	e := NewSV2PL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"k": "v"})

	ro, _ := e.Begin(engine.ReadOnly)
	if _, err := ro.Get("k"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() {
		rw, _ := e.Begin(engine.ReadWrite)
		err := rw.Put("k", []byte("w"))
		if err == nil {
			err = rw.Commit()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("writer finished (%v) while reader held lock", err)
	case <-time.After(20 * time.Millisecond):
	}
	ro.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// All baselines must still be one-copy serializable — the paper's
// complaint is overhead and interference, not incorrectness.
func TestStressSerializabilityBaselines(t *testing.T) {
	const (
		nKeys    = 12
		nWorkers = 6
		nTxns    = 80
	)
	for _, name := range []string{"mvto", "mv2pl", "sv2pl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rec := history.NewRecorder()
			e := engines(rec)[name]
			defer e.Close()

			bootKV := make(map[string][]byte)
			for i := 0; i < nKeys; i++ {
				bootKV[fmt.Sprintf("acct%02d", i)] = []byte{100}
			}
			if err := e.(bootstrapper).Bootstrap(bootKV); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for w := 0; w < nWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < nTxns; i++ {
						if rng.Intn(3) == 0 {
							ro, _ := e.Begin(engine.ReadOnly)
							for j := 0; j < 3; j++ {
								k := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
								if _, err := ro.Get(k); err != nil && !errors.Is(err, engine.ErrNotFound) {
									t.Errorf("ro get: %v", err)
								}
							}
							ro.Commit()
							continue
						}
						for attempt := 0; attempt < 100; attempt++ {
							from := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
							to := fmt.Sprintf("acct%02d", rng.Intn(nKeys))
							if from == to {
								continue
							}
							tx, _ := e.Begin(engine.ReadWrite)
							fv, err := tx.Get(from)
							if err != nil {
								tx.Abort()
								continue
							}
							tv, err := tx.Get(to)
							if err != nil {
								tx.Abort()
								continue
							}
							if fv[0] == 0 {
								tx.Abort()
								break
							}
							if err := tx.Put(from, []byte{fv[0] - 1}); err != nil {
								continue
							}
							if err := tx.Put(to, []byte{tv[0] + 1}); err != nil {
								continue
							}
							if err := tx.Commit(); err == nil {
								break
							}
						}
					}
				}(w)
			}
			wg.Wait()

			ro, _ := e.Begin(engine.ReadOnly)
			total := 0
			for i := 0; i < nKeys; i++ {
				v, err := ro.Get(fmt.Sprintf("acct%02d", i))
				if err != nil {
					t.Fatal(err)
				}
				total += int(v[0])
			}
			ro.Commit()
			if total != nKeys*100 {
				t.Fatalf("balance not conserved: %d", total)
			}
			if err := rec.Check(); err != nil {
				t.Fatalf("%s history not 1SR: %v", name, err)
			}
		})
	}
}

func TestMVTOReadOwnPendingWrite(t *testing.T) {
	e := NewMVTO(0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"k": "old"})
	tx, _ := e.Begin(engine.ReadWrite)
	if err := tx.Put("k", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Get("k"); err != nil || string(v) != "mine" {
		t.Fatalf("read-own-write = (%q,%v)", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestMV2PLCTLDeadlockAborts(t *testing.T) {
	e := NewMV2PLCTL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"a": "0", "b": "0"})
	t1, _ := e.Begin(engine.ReadWrite)
	t2, _ := e.Begin(engine.ReadWrite)
	if err := t1.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- t1.Put("b", []byte("x")) }()
	time.Sleep(10 * time.Millisecond)
	err := t2.Put("a", []byte("y"))
	if !engine.Retryable(err) {
		t.Fatalf("err = %v, want retryable deadlock", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats()["aborts.deadlock"]; got != 1 {
		t.Fatalf("aborts.deadlock = %d", got)
	}
}

func TestSV2PLReadOnlyDeadlockVictim(t *testing.T) {
	e := NewSV2PL(0, lock.Detect, 0, nil)
	defer e.Close()
	boot(t, e, map[string]string{"a": "0", "b": "0"})
	// rw holds X(a), waits for X(b); ro holds S(b), requests S(a): cycle.
	rw, _ := e.Begin(engine.ReadWrite)
	if err := rw.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	ro, _ := e.Begin(engine.ReadOnly)
	if _, err := ro.Get("b"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- rw.Put("b", []byte("2")) }()
	time.Sleep(10 * time.Millisecond)
	_, err := ro.Get("a")
	if !engine.Retryable(err) {
		t.Fatalf("read-only Get err = %v, want retryable (deadlock victim)", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := rw.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineDoubleFinish(t *testing.T) {
	for name, e := range engines(nil) {
		t.Run(name, func(t *testing.T) {
			defer e.Close()
			tx, _ := e.Begin(engine.ReadWrite)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); !errors.Is(err, engine.ErrTxDone) {
				t.Fatalf("double commit = %v", err)
			}
			tx.Abort()
			ro, _ := e.Begin(engine.ReadOnly)
			ro.Abort()
			if err := ro.Commit(); !errors.Is(err, engine.ErrTxDone) {
				t.Fatalf("commit after abort = %v", err)
			}
		})
	}
}

func TestSV2PLSingleVersionInvariant(t *testing.T) {
	e := NewSV2PL(0, lock.Detect, 0, nil)
	defer e.Close()
	for i := 0; i < 20; i++ {
		commitWrite(t, e, map[string]string{"k": fmt.Sprintf("v%d", i)})
	}
	if got := e.Store().Get("k").VersionCount(); got != 1 {
		t.Fatalf("sv2pl retained %d versions, want 1", got)
	}
}
