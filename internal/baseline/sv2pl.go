package baseline

import (
	"errors"
	"sync/atomic"
	"time"

	"mvdb/internal/engine"
	"mvdb/internal/lock"
	"mvdb/internal/storage"
)

// SV2PL is single-version strict two-phase locking: the non-multiversion
// baseline. Read-only transactions are ordinary transactions that take
// shared locks, so they block behind writers, writers block behind them,
// and they participate in deadlocks — everything Section 1 of the paper
// says multiversioning exists to avoid.
//
// The implementation reuses the multiversion store but each read returns
// the latest committed version and the object's history is pruned on
// overwrite, so at most one version is live per key.
type SV2PL struct {
	store *storage.Store
	locks *lock.Manager
	tnc   atomic.Uint64
	ids   atomic.Uint64
	ages  atomic.Uint64
	rec   engine.Recorder

	commitsRO      atomic.Uint64
	commitsRW      atomic.Uint64
	abortsConflict atomic.Uint64
	abortsDeadlock atomic.Uint64
	abortsUser     atomic.Uint64
	roBlocked      atomic.Uint64
	closed         atomic.Bool
}

// NewSV2PL creates the single-version baseline engine.
func NewSV2PL(shards int, policy lock.Policy, timeout time.Duration, rec engine.Recorder) *SV2PL {
	if rec == nil {
		rec = engine.NopRecorder{}
	}
	return &SV2PL{
		store: storage.NewStore(shards),
		locks: lock.NewManager(policy, timeout),
		rec:   rec,
	}
}

// Name implements engine.Engine.
func (e *SV2PL) Name() string { return "sv2pl" }

// Store exposes the underlying store.
func (e *SV2PL) Store() *storage.Store { return e.store }

// Bootstrap loads initial data as version 0.
func (e *SV2PL) Bootstrap(data map[string][]byte) error {
	if e.ids.Load() != 0 {
		return errors.New("baseline: Bootstrap after transactions started")
	}
	for k, v := range data {
		e.store.Bootstrap(k, v)
	}
	return nil
}

// Begin implements engine.Engine. Both classes run the same locking
// protocol; the class only gates writes.
func (e *SV2PL) Begin(class engine.Class) (engine.Tx, error) {
	if e.closed.Load() {
		return nil, errors.New("baseline: engine closed")
	}
	id := e.ids.Add(1)
	e.locks.Begin(id, e.ages.Add(1))
	t := &svTx{e: e, id: id, class: class, buf: make(map[string]bufWrite)}
	e.rec.RecordBegin(id, class)
	return t, nil
}

// Stats implements engine.Engine.
func (e *SV2PL) Stats() map[string]int64 {
	return map[string]int64{
		"commits.ro":      int64(e.commitsRO.Load()),
		"commits.rw":      int64(e.commitsRW.Load()),
		"aborts.conflict": int64(e.abortsConflict.Load()),
		"aborts.deadlock": int64(e.abortsDeadlock.Load()),
		"aborts.user":     int64(e.abortsUser.Load()),
		"rw.aborts.by_ro": 0,
		"ro.blocked":      int64(e.roBlocked.Load()),
		"lock.waits":      int64(e.locks.Waits()),
		"lock.deadlocks":  int64(e.locks.Deadlocks()),
	}
}

// Close implements engine.Engine.
func (e *SV2PL) Close() error {
	e.closed.Store(true)
	return nil
}

type svTx struct {
	e     *SV2PL
	id    uint64
	class engine.Class
	buf   map[string]bufWrite
	done  bool
	tn    uint64
}

// Get implements engine.Tx: shared lock, then the (single) current value.
func (t *svTx) Get(key string) ([]byte, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if w, ok := t.buf[key]; ok {
		if w.tombstone {
			return nil, engine.ErrNotFound
		}
		return w.data, nil
	}
	waitsBefore := t.e.locks.Waits()
	if err := t.acquire(key, lock.Shared); err != nil {
		return nil, err
	}
	if t.class == engine.ReadOnly && t.e.locks.Waits() > waitsBefore {
		t.e.roBlocked.Add(1)
	}
	o := t.e.store.Get(key)
	if o == nil {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	v, ok := o.LatestCommitted()
	if !ok {
		t.e.rec.RecordRead(t.id, key, 0)
		return nil, engine.ErrNotFound
	}
	t.e.rec.RecordRead(t.id, key, v.TN)
	if v.Tombstone {
		return nil, engine.ErrNotFound
	}
	return v.Data, nil
}

// Put implements engine.Tx.
func (t *svTx) Put(key string, value []byte) error {
	return t.write(key, bufWrite{data: value})
}

// Delete implements engine.Tx.
func (t *svTx) Delete(key string) error {
	return t.write(key, bufWrite{tombstone: true})
}

func (t *svTx) write(key string, w bufWrite) error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.class == engine.ReadOnly {
		return engine.ErrReadOnly
	}
	if err := t.acquire(key, lock.Exclusive); err != nil {
		return err
	}
	t.buf[key] = w
	return nil
}

func (t *svTx) acquire(key string, mode lock.Mode) error {
	err := t.e.locks.Acquire(t.id, key, mode)
	if err == nil {
		return nil
	}
	var mapped error
	switch {
	case errors.Is(err, lock.ErrDeadlock), errors.Is(err, lock.ErrTimeout):
		t.e.abortsDeadlock.Add(1)
		mapped = engine.ErrDeadlock
	case errors.Is(err, lock.ErrWounded):
		t.e.abortsDeadlock.Add(1)
		mapped = engine.ErrWounded
	default:
		t.e.abortsConflict.Add(1)
		mapped = engine.ErrConflict
	}
	t.abortInternal()
	return mapped
}

// Commit implements engine.Tx: install in place (pruning old versions to
// keep the store single-version), then release locks.
func (t *svTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.e.locks.Wounded(t.id) {
		t.e.abortsDeadlock.Add(1)
		t.abortInternal()
		return engine.ErrWounded
	}
	t.done = true
	if t.class == engine.ReadOnly || len(t.buf) == 0 {
		t.e.rec.RecordCommit(t.id, t.tn)
		t.e.locks.ReleaseAll(t.id)
		if t.class == engine.ReadOnly {
			t.e.commitsRO.Add(1)
		} else {
			t.e.commitsRW.Add(1)
		}
		return nil
	}
	t.tn = t.e.tnc.Add(1)
	for key, w := range t.buf {
		o := t.e.store.GetOrCreate(key)
		o.InstallCommitted(storage.Version{TN: t.tn, Data: w.data, Tombstone: w.tombstone})
		o.Prune(t.tn) // single-version: drop everything older
		t.e.rec.RecordWrite(t.id, key, t.tn)
	}
	t.e.rec.RecordCommit(t.id, t.tn)
	t.e.locks.ReleaseAll(t.id)
	t.e.commitsRW.Add(1)
	return nil
}

// Abort implements engine.Tx.
func (t *svTx) Abort() {
	if t.done {
		return
	}
	t.e.abortsUser.Add(1)
	t.abortInternal()
}

func (t *svTx) abortInternal() {
	if t.done {
		return
	}
	t.done = true
	t.e.locks.ReleaseAll(t.id)
	t.e.rec.RecordAbort(t.id)
}

// ID implements engine.Tx.
func (t *svTx) ID() uint64 { return t.id }

// Class implements engine.Tx.
func (t *svTx) Class() engine.Class { return t.class }

// SN implements engine.Tx.
func (t *svTx) SN() (uint64, bool) {
	if t.tn != 0 {
		return t.tn, true
	}
	return 0, false
}
