package mvdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mvdb/internal/flight"
	"mvdb/internal/trace"
)

// TestTracingDisabledZeroOverhead is the acceptance alloc guard for the
// span layer: with TraceSample zero (the default), every hook in the
// commit paths must reduce to one pointer test and keep the seed
// allocation baselines — Update at 12 allocs/op and View at 2.
func TestTracingDisabledZeroOverhead(t *testing.T) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.TxTraces() != nil {
		t.Fatal("TxTraces non-nil with TraceSample zero")
	}
	val := []byte("v")
	update := testing.AllocsPerRun(200, func() {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", val)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if update > 12 {
		t.Errorf("Update allocs/op = %.1f with tracing off, want <= 12 (seed baseline)", update)
	}
	view := testing.AllocsPerRun(200, func() {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
	if view > 2 {
		t.Errorf("View allocs/op = %.1f with tracing off, want <= 2 (seed baseline)", view)
	}
}

// TestTraceEndToEndBlameEdges is the acceptance path for the tentpole:
// a durable group-commit engine under a contended workload, sampled at
// 1.0 with promotion forced, must retain at least one trace carrying
// all three blame kinds — blocked-on (lock), joined-batch (WAL),
// queued-behind (VC drain) — and that trace must survive the Chrome
// export round trip, the HTTP endpoint, and a flight bundle.
func TestTraceEndToEndBlameEdges(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{
		Protocol:            TwoPhaseLocking,
		WALPath:             filepath.Join(dir, "commit.log"),
		GroupCommit:         true,
		GroupCommitMaxDelay: 200 * time.Microsecond,
		TraceSample:         1.0,
		TraceSlowThreshold:  time.Nanosecond, // promote everything
		DebugAddr:           "127.0.0.1:0",
		FlightDir:           filepath.Join(dir, "flight"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.TxTraces() == nil {
		t.Fatal("TxTraces nil with TraceSample set")
	}

	// Contended mix: private-key writers keep group-commit batches and
	// the VC queue busy (fsync waits create registered-but-incomplete
	// predecessors), hot-key contenders collide on one lock.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = db.Update(func(tx *Tx) error {
					return tx.Put(fmt.Sprintf("private-%d-%d", w, i), []byte("v"))
				})
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = db.Update(func(tx *Tx) error {
					if _, err := tx.Get("hot"); err != nil && err != ErrNotFound {
						return err
					}
					return tx.Put("hot", []byte("v"))
				})
			}
		}(w)
	}
	wg.Wait()

	prom := db.TxTraces().Promoted()
	if len(prom) == 0 {
		t.Fatal("no traces promoted despite TraceSlowThreshold=1ns")
	}
	kinds := map[string]bool{}
	for _, tr := range prom {
		for _, b := range tr.Blames {
			kinds[b.Kind] = true
		}
	}
	for _, want := range []string{trace.BlameBlockedOn, trace.BlameJoinedBatch, trace.BlameQueuedBehind} {
		if !kinds[want] {
			t.Fatalf("no promoted trace carries blame %q; kinds seen: %v over %d traces",
				want, kinds, len(prom))
		}
	}

	// Chrome round trip preserves every promoted trace.
	data, err := trace.EncodeChrome(prom)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.DecodeChrome(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prom) {
		t.Fatalf("chrome round trip: %d traces in, %d out", len(prom), len(back))
	}
	byID := map[uint64]TxTrace{}
	for _, tr := range back {
		byID[tr.ID] = tr
	}
	for _, tr := range prom {
		b, ok := byID[tr.ID]
		if !ok {
			t.Fatalf("trace %016x lost in chrome round trip", tr.ID)
		}
		if b.Tx != tr.Tx || b.TN != tr.TN || len(b.Spans) != len(tr.Spans) || len(b.Blames) != len(tr.Blames) {
			t.Fatalf("trace %016x mutated:\n got %+v\nwant %+v", tr.ID, b, tr)
		}
	}

	// The HTTP endpoint serves the same document (JSON dump) and the
	// Chrome form.
	resp, err := http.Get("http://" + db.DebugAddr() + "/debug/mvdb/traces")
	if err != nil {
		t.Fatal(err)
	}
	var dump trace.Dump
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Promoted) == 0 || dump.Stats.Sampled == 0 {
		t.Fatalf("endpoint dump empty: %+v", dump.Stats)
	}
	resp, err = http.Get("http://" + db.DebugAddr() + "/debug/mvdb/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.DecodeChrome(body); err != nil {
		t.Fatalf("endpoint chrome export undecodable: %v", err)
	}
	if !strings.Contains(string(body), trace.ChromeSchema) {
		t.Fatalf("chrome export missing schema %q", trace.ChromeSchema)
	}

	// A flight bundle embeds the promoted traces.
	path, err := db.Flight().Trigger("test", "trace e2e")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Traces) == 0 {
		t.Fatal("flight bundle has no traces section")
	}
	found := false
	for _, tr := range b.Traces {
		for _, bl := range tr.Blames {
			if bl.Kind == trace.BlameJoinedBatch {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("bundle traces lost their blame edges")
	}
}

// BenchmarkTraceSampling measures the span layer's cost at the three
// rates EXPERIMENTS O4 reports: disabled, 1%, and full sampling, over a
// durable group-commit Update workload.
func BenchmarkTraceSampling(b *testing.B) {
	for _, rate := range []float64{0, 0.01, 1.0} {
		b.Run(fmt.Sprintf("sample=%v", rate), func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(Options{
				Protocol:    TwoPhaseLocking,
				WALPath:     filepath.Join(dir, "commit.log"),
				GroupCommit: true,
				TraceSample: rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := []byte("v")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Update(func(tx *Tx) error {
					return tx.Put(fmt.Sprintf("k%d", i%64), val)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
