package mvdb

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvdb/internal/faultfs"
	"mvdb/internal/flight"
	"mvdb/internal/health"
	"mvdb/internal/obs"
)

// TestHealthDisabledZeroOverhead is the acceptance alloc guard for the
// health layer: with Options.Health off (the default), the commit paths
// must reduce to one pointer test and keep the seed allocation
// baselines — Update at 12 allocs/op and View at 2.
func TestHealthDisabledZeroOverhead(t *testing.T) {
	db, err := Open(Options{Protocol: TwoPhaseLocking})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Health() != nil {
		t.Fatal("Health() non-nil with Options.Health off")
	}
	val := []byte("v")
	update := testing.AllocsPerRun(200, func() {
		if err := db.Update(func(tx *Tx) error {
			return tx.Put("k", val)
		}); err != nil {
			t.Fatal(err)
		}
	})
	if update > 12 {
		t.Errorf("Update allocs/op = %.1f with health off, want <= 12 (seed baseline)", update)
	}
	view := testing.AllocsPerRun(200, func() {
		if err := db.View(func(tx *Tx) error {
			_, err := tx.Get("k")
			return err
		}); err != nil {
			t.Fatal(err)
		}
	})
	if view > 2 {
		t.Errorf("View allocs/op = %.1f with health off, want <= 2 (seed baseline)", view)
	}
}

// BenchmarkHealthMonitor measures the health layer's cost off and on
// (EXPERIMENTS O5) over the same durable group-commit Update workload
// as BenchmarkTraceSampling: the enabled hot-path cost is one
// time.Since plus one lock-free histogram record per commit, with the
// monitor ticking at its default interval in the background.
func BenchmarkHealthMonitor(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("health=%v", on), func(b *testing.B) {
			dir := b.TempDir()
			db, err := Open(Options{
				Protocol:    TwoPhaseLocking,
				WALPath:     filepath.Join(dir, "commit.log"),
				GroupCommit: true,
				Health:      on,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			val := []byte("v")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Update(func(tx *Tx) error {
					return tx.Put(fmt.Sprintf("k%d", i%64), val)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestHealthEndToEnd is the acceptance path for the tentpole: a durable
// group-commit engine whose fsync develops a sticky injected stall must
// trip the commit-p99 SLO's fast burn window, and the resulting page
// alarm must flow through every reused pipe — a flight bundle carrying
// the health timeline, promoted causal traces, an EvHealth event in the
// trace ring, a health signal observed by the adaptive policy, and the
// /debug/mvdb/health endpoint reporting the paged SLO.
func TestHealthEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// The first fsync of the commit log (and, sticky, every one after)
	// stalls 8ms — a dying disk. The FS stays unlocked during the
	// stall, so only the fsync path is slow.
	fs := faultfs.New(faultfs.Plan{Rules: []faultfs.Rule{{
		Op: faultfs.OpSync, Path: "commit.log", Nth: 1,
		Fault: faultfs.Fault{Delay: 8 * time.Millisecond, Sticky: true},
	}}})
	db, err := Open(Options{
		AdaptiveCC:     true,
		WALPath:        filepath.Join(dir, "commit.log"),
		GroupCommit:    true,
		FS:             fs,
		Health:         true,
		HealthInterval: 10 * time.Millisecond,
		HealthSLOs: []HealthSLO{{
			Name: "commit-p99", Metric: "commit_p99_ns", Max: 2e6, // 2ms: any stalled-fsync commit breaches
			FastWindow: 4, SlowWindow: 8,
		}},
		TraceSample: 1.0,
		FlightDir:   filepath.Join(dir, "flight"),
		DebugAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Health() == nil {
		t.Fatal("Health() nil with Options.Health set")
	}

	// Committers keep every 10ms interval populated with stalled
	// commits until the page alarm lands.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = db.Update(func(tx *Tx) error {
					return tx.Put(fmt.Sprintf("k%d-%d", w, i%32), []byte("v"))
				})
				commits.Add(1)
			}
		}(w)
	}
	deadline := time.Now().Add(10 * time.Second)
	var page int64
	for time.Now().Before(deadline) {
		if _, page = db.Health().AlarmCounts(); page > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if page == 0 {
		t.Fatalf("no page alarm after 10s; %d commits, points=%d, slos=%+v",
			commits.Load(), db.Health().PointsTotal(), db.Health().SLOStates())
	}

	// The alarm promoted the freshest sampled traces for tail retention.
	prom := db.TxTraces().Promoted()
	if len(prom) == 0 {
		t.Fatal("page alarm promoted no traces")
	}

	// It also appended an EvHealth event to the trace ring.
	foundEv := false
	for _, ev := range db.Trace() {
		if ev.Type == obs.EvHealth && strings.HasPrefix(ev.Key, "commit-p99/") {
			foundEv = true
			break
		}
	}
	if !foundEv {
		t.Fatal("no EvHealth event for commit-p99 in the trace ring")
	}

	// The adaptive policy consumed health signals (and only those: the
	// internal sampler is disabled once the timeline drives it).
	if n := db.Stats().Extra["adaptive.health_signals"]; n == 0 {
		t.Fatal("adaptive policy observed no health signals")
	}

	// The page alarm triggered an async flight bundle; it must carry
	// the health timeline (schema v2).
	var bundlePath string
	for time.Now().Before(deadline) {
		if bundlePath = db.Flight().LastBundle(); bundlePath != "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if bundlePath == "" {
		t.Fatal("page alarm produced no flight bundle")
	}
	b, err := flight.Load(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != flight.SchemaVersion {
		t.Fatalf("bundle schema = %q, want %q", b.Schema, flight.SchemaVersion)
	}
	if len(b.Health) == 0 {
		t.Fatal("flight bundle has no health points")
	}
	if !strings.HasPrefix(b.Reason, "slo-commit-p99") {
		t.Fatalf("bundle reason = %q, want slo-commit-p99", b.Reason)
	}

	// The HTTP endpoint reports the paged SLO and the retained points.
	resp, err := http.Get("http://" + db.DebugAddr() + "/debug/mvdb/health")
	if err != nil {
		t.Fatal(err)
	}
	var tl health.Timeline
	err = json.NewDecoder(resp.Body).Decode(&tl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tl.Schema != health.Schema {
		t.Fatalf("timeline schema = %q, want %q", tl.Schema, health.Schema)
	}
	if len(tl.Levels) == 0 || len(tl.Levels[0].Points) == 0 {
		t.Fatal("health endpoint served no points")
	}
	if tl.AlarmsPage == 0 {
		t.Fatalf("health endpoint reports no page alarms: %+v", tl)
	}
	// Prometheus exposition includes the health families.
	mresp, err := http.Get("http://" + db.DebugAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, fam := range []string{"mvdb_health_points_total", "mvdb_health_alarms_total", "mvdb_health_slo_state"} {
		if !strings.Contains(string(mbody), fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}
}

// TestDebugEndpointErrorPaths covers the debug server's handler error
// paths at the mvdb level: malformed query parameters must answer 400
// with a usable message, and the degenerate-but-valid requests (chrome
// export of empty trace rings, health timeline before the first tick)
// must answer 200.
func TestDebugEndpointErrorPaths(t *testing.T) {
	db, err := Open(Options{
		Health:         true,
		HealthInterval: time.Hour, // no tick during the test: pre-first-tick path
		TraceSample:    1.0,       // enabled but unused: empty rings
		DebugAddr:      "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	base := "http://" + db.DebugAddr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	for _, path := range []string{
		"/debug/mvdb/health?level=9",
		"/debug/mvdb/health?level=-1",
		"/debug/mvdb/health?level=x",
		"/debug/mvdb/health?n=0",
		"/debug/mvdb/health?n=abc",
		"/debug/mvdb/health?format=pdf",
		"/debug/mvdb/health?format=sparkline&metric=bogus",
	} {
		if code, body := get(path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d (%q), want 400", path, code, body)
		}
	}

	// Health before the first tick: 200 with the schema and no points.
	code, body := get("/debug/mvdb/health")
	if code != http.StatusOK {
		t.Fatalf("health pre-tick = %d (%q), want 200", code, body)
	}
	var tl health.Timeline
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Schema != health.Schema {
		t.Fatalf("schema = %q, want %q", tl.Schema, health.Schema)
	}
	for _, lv := range tl.Levels {
		if len(lv.Points) != 0 {
			t.Fatalf("pre-tick timeline has points: %+v", lv)
		}
	}

	// Sparkline form of an empty timeline is also fine.
	if code, _ := get("/debug/mvdb/health?format=sparkline"); code != http.StatusOK {
		t.Fatalf("sparkline pre-tick = %d, want 200", code)
	}

	// Chrome export of empty trace rings: a valid, empty document.
	code, body = get("/debug/mvdb/traces?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export of empty rings = %d (%q), want 200", code, body)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("chrome export of empty rings is not JSON: %v", err)
	}
}
