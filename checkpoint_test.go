package mvdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRequiresWAL(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint without WAL succeeded")
	}
}

func TestCheckpointRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.PutString(fmt.Sprintf("k%02d", i%5), fmt.Sprintf("v%d", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Update(func(tx *Tx) error { return tx.Delete("k03") })
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes must also survive.
	if err := db.Update(func(tx *Tx) error { return tx.PutString("k00", "post") }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	checks := map[string]string{"k00": "post", "k01": "v16", "k02": "v17", "k04": "v19"}
	db2.View(func(tx *Tx) error {
		for k, want := range checks {
			if got, err := tx.GetString(k); err != nil || got != want {
				t.Errorf("%s = (%q,%v), want %q", k, got, err, want)
			}
		}
		if _, err := tx.Get("k03"); err != ErrNotFound {
			t.Errorf("k03 err = %v, want ErrNotFound (tombstone through checkpoint)", err)
		}
		return nil
	})
}

func TestCompactLogShrinksAndPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.PutString("hot", fmt.Sprintf("v%d", i))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error { return tx.PutString("hot", "final") }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	before, _ := os.Stat(path)
	if err := CompactLog(path); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var got string
	db2.View(func(tx *Tx) error { got, _ = tx.GetString("hot"); return nil })
	if got != "final" {
		t.Fatalf("post-compaction value = %q, want final", got)
	}
	// New transaction numbers must still advance past everything.
	if err := db2.Update(func(tx *Tx) error { return tx.PutString("hot", "newer") }); err != nil {
		t.Fatal(err)
	}
}

func TestCompactLogWithoutSnapshotIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, _ := Open(Options{WALPath: path})
	db.Update(func(tx *Tx) error { return tx.PutString("k", "v") })
	db.Close()
	before, _ := os.Stat(path)
	if err := CompactLog(path); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() != before.Size() {
		t.Fatal("no-snapshot compaction modified the log")
	}
}

// Checkpoint is safe under concurrent write load: the snapshot is a
// consistent prefix regardless of in-flight commits.
func TestCheckpointUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.log")
	db, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			db.Update(func(tx *Tx) error {
				if err := tx.PutString("a", fmt.Sprintf("%d", i)); err != nil {
					return err
				}
				return tx.PutString("b", fmt.Sprintf("%d", i))
			})
		}
	}()
	for i := 0; i < 5; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	db.Close()

	db2, err := Open(Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		a, _ := tx.GetString("a")
		b, _ := tx.GetString("b")
		if a != b {
			t.Errorf("recovered torn state: a=%q b=%q", a, b)
		}
		return nil
	})
}
